//! Link latency and loss models.
//!
//! The paper evaluates on two environments: a 1 Gbps switched cluster
//! (1,000 nodes multiplexed over 22 machines) and a 400-node PlanetLab
//! slice with "heavily loaded machines, larger network delays and high
//! message loss rates" (§V-E). [`NetProfile::cluster`] and
//! [`NetProfile::planetlab`] are calibrated to those descriptions: the
//! cluster profile combines sub-millisecond links with a small host
//! multiplexing delay; the PlanetLab profile uses a heavy-tailed
//! (log-normal) delay distribution plus message loss.

use crate::time::SimDuration;
use whisper_rand::Rng;

/// A sampling distribution over one-way message delays.
#[derive(Clone, Debug)]
pub enum LatencyModel {
    /// Fixed delay.
    Constant(SimDuration),
    /// Uniform in `[min, max]`.
    Uniform {
        /// Lower bound.
        min: SimDuration,
        /// Upper bound (inclusive).
        max: SimDuration,
    },
    /// Log-normal delay with the given median and shape `sigma`, clamped
    /// to `[min, cap]`. Heavy-tailed, PlanetLab-like.
    LogNormal {
        /// Median delay in milliseconds.
        median_ms: f64,
        /// Log-space standard deviation (larger = heavier tail).
        sigma: f64,
        /// Minimum delay.
        min: SimDuration,
        /// Cap on the tail.
        cap: SimDuration,
    },
}

impl LatencyModel {
    /// Draws one delay.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { min, max } => {
                let (lo, hi) = (min.as_micros(), max.as_micros());
                SimDuration::from_micros(rng.gen_range(lo..=hi.max(lo)))
            }
            LatencyModel::LogNormal { median_ms, sigma, min, cap } => {
                // Box–Muller transform for a standard normal draw.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let ms = median_ms * (sigma * z).exp();
                let us = (ms * 1_000.0).round().max(0.0) as u64;
                SimDuration::from_micros(
                    us.clamp(min.as_micros(), cap.as_micros()),
                )
            }
        }
    }

    /// Smallest delay this model can ever produce.
    ///
    /// The sharded engine uses this as the conservative lookahead bound:
    /// no draw from [`sample`](LatencyModel::sample) may return less, so
    /// a message sent at time `t` can never arrive before
    /// `t + min_delay()`.
    pub fn min_delay(&self) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { min, .. } => *min,
            LatencyModel::LogNormal { min, .. } => *min,
        }
    }

    /// Expected (mean) delay, used by tests and planning heuristics.
    pub fn mean(&self) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { min, max } => {
                SimDuration::from_micros((min.as_micros() + max.as_micros()) / 2)
            }
            LatencyModel::LogNormal { median_ms, sigma, min, cap } => {
                let mean_ms = median_ms * (sigma * sigma / 2.0).exp();
                let us = (mean_ms * 1_000.0) as u64;
                SimDuration::from_micros(us.clamp(min.as_micros(), cap.as_micros()))
            }
        }
    }
}

/// A complete network environment: link delays, per-host processing
/// delays, and loss.
#[derive(Clone, Debug)]
pub struct NetProfile {
    /// One-way link propagation delay.
    pub link: LatencyModel,
    /// Per-message processing/multiplexing delay at the receiving host
    /// (models many simulated nodes sharing a physical machine, as in the
    /// paper's deployments).
    pub processing: LatencyModel,
    /// Probability that a message is silently lost, in `[0, 1]`.
    pub loss: f64,
}

impl NetProfile {
    /// Switched-cluster profile (paper testbed 1).
    pub fn cluster() -> Self {
        NetProfile {
            link: LatencyModel::Uniform {
                min: SimDuration::from_micros(200),
                max: SimDuration::from_millis(1),
            },
            processing: LatencyModel::Uniform {
                min: SimDuration::from_millis(2),
                max: SimDuration::from_millis(25),
            },
            loss: 0.0,
        }
    }

    /// PlanetLab profile (paper testbed 2): heavy-tailed wide-area delays,
    /// loaded hosts, message loss.
    pub fn planetlab() -> Self {
        NetProfile {
            link: LatencyModel::LogNormal {
                median_ms: 60.0,
                sigma: 0.9,
                min: SimDuration::from_millis(5),
                cap: SimDuration::from_secs(3),
            },
            processing: LatencyModel::LogNormal {
                median_ms: 30.0,
                sigma: 1.1,
                min: SimDuration::from_millis(1),
                cap: SimDuration::from_secs(5),
            },
            loss: 0.02,
        }
    }

    /// Instant, lossless delivery — unit tests that assert on protocol
    /// logic rather than timing.
    pub fn ideal() -> Self {
        NetProfile {
            link: LatencyModel::Constant(SimDuration::from_micros(1)),
            processing: LatencyModel::Constant(SimDuration::ZERO),
            loss: 0.0,
        }
    }

    /// Smallest one-way delay this profile can ever produce
    /// (`link.min_delay() + processing.min_delay()`).
    ///
    /// This bounds the sharded engine's lookahead window: events a shard
    /// processes inside `[t, t + min_delay())` cannot be affected by any
    /// message another shard sends at or after `t`. All built-in profiles
    /// return at least 1 µs; a custom profile returning zero cannot be
    /// sharded (see [`crate::sim::SimConfig`]).
    pub fn min_delay(&self) -> SimDuration {
        self.link.min_delay() + self.processing.min_delay()
    }

    /// Samples a total one-way delay for a message.
    pub fn sample_delay<R: Rng>(&self, rng: &mut R) -> SimDuration {
        self.link.sample(rng) + self.processing.sample(rng)
    }

    /// Samples whether a message is lost.
    pub fn sample_loss<R: Rng>(&self, rng: &mut R) -> bool {
        self.loss > 0.0 && rng.gen_bool(self.loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_rand::rngs::StdRng;
    use whisper_rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::Constant(SimDuration::from_millis(7));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng).as_millis(), 7);
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let m = LatencyModel::Uniform {
            min: SimDuration::from_millis(2),
            max: SimDuration::from_millis(9),
        };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d >= SimDuration::from_millis(2) && d <= SimDuration::from_millis(9));
        }
    }

    #[test]
    fn lognormal_median_roughly_right() {
        let m = LatencyModel::LogNormal {
            median_ms: 60.0,
            sigma: 0.9,
            min: SimDuration::ZERO,
            cap: SimDuration::from_secs(100),
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut samples: Vec<u64> = (0..5000).map(|_| m.sample(&mut rng).as_micros()).collect();
        samples.sort_unstable();
        let median_ms = samples[2500] as f64 / 1000.0;
        assert!((median_ms - 60.0).abs() < 6.0, "median {median_ms}");
    }

    #[test]
    fn lognormal_respects_cap_and_min() {
        let m = LatencyModel::LogNormal {
            median_ms: 60.0,
            sigma: 2.0,
            min: SimDuration::from_millis(10),
            cap: SimDuration::from_millis(100),
        };
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..2000 {
            let d = m.sample(&mut rng);
            assert!(d >= SimDuration::from_millis(10));
            assert!(d <= SimDuration::from_millis(100));
        }
    }

    #[test]
    fn planetlab_is_slower_and_lossier_than_cluster() {
        let pl = NetProfile::planetlab();
        let cl = NetProfile::cluster();
        assert!(pl.link.mean() > cl.link.mean());
        assert!(pl.loss > cl.loss);
        let mut rng = StdRng::seed_from_u64(5);
        let lost = (0..10_000).filter(|_| pl.sample_loss(&mut rng)).count();
        let rate = lost as f64 / 10_000.0;
        assert!((rate - pl.loss).abs() < 0.01);
        assert!(!(0..10_000).any(|_| cl.sample_loss(&mut rng)));
    }

    #[test]
    fn min_delay_is_a_true_lower_bound() {
        for profile in [NetProfile::cluster(), NetProfile::planetlab(), NetProfile::ideal()] {
            let floor = profile.min_delay();
            assert!(floor >= SimDuration::from_micros(1), "profiles must be shardable");
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..5000 {
                assert!(profile.sample_delay(&mut rng) >= floor);
            }
        }
    }

    #[test]
    fn ideal_profile_is_fast_and_lossless() {
        let p = NetProfile::ideal();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(p.sample_delay(&mut rng) <= SimDuration::from_micros(1));
        assert!(!p.sample_loss(&mut rng));
    }
}
