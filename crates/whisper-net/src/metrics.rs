//! Measurement plumbing: per-node traffic accounting and generic named
//! counters / sample series.
//!
//! The simulator credits every sent and delivered message automatically
//! (including an IP+UDP header overhead, so "bandwidth" means what a host
//! would see on its uplink). Protocols additionally record their own
//! counters (e.g. WCL route successes) and sample series (e.g. RSA CPU
//! time per operation) through [`Metrics`].

use crate::id::NodeId;
use std::collections::BTreeMap;

/// Bytes of IP + UDP headers charged to every message.
pub const HEADER_OVERHEAD: usize = 28;

/// Cumulative traffic of one node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Bytes sent (uplink), headers included.
    pub up_bytes: u64,
    /// Bytes received (downlink), headers included.
    pub down_bytes: u64,
    /// Messages sent.
    pub up_msgs: u64,
    /// Messages delivered.
    pub down_msgs: u64,
}

/// Canonical event key used to order sample series across shards:
/// `(time in µs, source class/id, per-source sequence number)`. Every
/// event the sharded engine dispatches carries one, and keys compare the
/// same way regardless of how nodes are partitioned.
pub(crate) type SampleTag = (u64, u64, u64);

/// Metric sink shared by the simulator and all protocols.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    samples: BTreeMap<&'static str, Vec<f64>>,
    /// Per-series event tags, parallel to `samples`, populated only while
    /// the engine has a current-event tag set. Used to merge per-shard
    /// sample series back into the canonical global order.
    tags: BTreeMap<&'static str, Vec<SampleTag>>,
    /// Tag stamped on every sample recorded until the next `set_tag`.
    cur_tag: Option<SampleTag>,
    traffic: BTreeMap<NodeId, Traffic>,
}

impl Metrics {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Increments counter `name` by `delta`.
    pub fn count(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Current value of counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Appends a sample to series `name`.
    pub fn sample(&mut self, name: &'static str, value: f64) {
        self.samples.entry(name).or_default().push(value);
        if let Some(tag) = self.cur_tag {
            self.tags.entry(name).or_default().push(tag);
        }
    }

    /// Sets (or clears) the event tag stamped on subsequent samples.
    ///
    /// The engine sets this to the current event's canonical key before
    /// invoking a protocol callback and clears it at window boundaries;
    /// harness-time samples (no tag) are appended directly to the master
    /// sink and never merged.
    pub(crate) fn set_tag(&mut self, tag: Option<SampleTag>) {
        self.cur_tag = tag;
    }

    /// Folds per-shard delta sinks into `self`.
    ///
    /// Counters and traffic merge by addition. Sample series are merged by
    /// their event tags: within one shard samples were recorded in
    /// nondecreasing tag order (shards process events in canonical key
    /// order), so a k-way merge reproduces exactly the series a 1-shard
    /// run would have recorded. Tags never collide across shards because
    /// each event key contains its source id.
    pub(crate) fn merge_shard_deltas(&mut self, deltas: Vec<Metrics>) {
        for d in &deltas {
            for (&name, &v) in &d.counters {
                *self.counters.entry(name).or_insert(0) += v;
            }
            for (&node, t) in &d.traffic {
                let e = self.traffic.entry(node).or_default();
                e.up_bytes += t.up_bytes;
                e.down_bytes += t.down_bytes;
                e.up_msgs += t.up_msgs;
                e.down_msgs += t.down_msgs;
            }
        }
        let mut names: Vec<&'static str> = Vec::new();
        for d in &deltas {
            for &name in d.samples.keys() {
                if !names.contains(&name) {
                    names.push(name);
                }
            }
        }
        names.sort_unstable();
        for name in names {
            // One (tags, values, cursor) run per shard that touched the
            // series; repeatedly emit the run with the smallest head tag.
            let mut runs: Vec<(&[SampleTag], &[f64], usize)> = deltas
                .iter()
                .filter_map(|d| {
                    let vals = d.samples.get(name)?;
                    let tags = d.tags.get(name).map(Vec::as_slice).unwrap_or(&[]);
                    debug_assert_eq!(
                        tags.len(),
                        vals.len(),
                        "shard-delta series {name} must be fully tagged"
                    );
                    Some((tags, vals.as_slice(), 0usize))
                })
                .collect();
            let out = self.samples.entry(name).or_default();
            loop {
                let mut best: Option<usize> = None;
                for (i, (tags, _, cur)) in runs.iter().enumerate() {
                    if *cur < tags.len()
                        && best.is_none_or(|b| tags[*cur] < runs[b].0[runs[b].2])
                    {
                        best = Some(i);
                    }
                }
                let Some(i) = best else { break };
                let (_, vals, cur) = &mut runs[i];
                out.push(vals[*cur]);
                *cur += 1;
            }
        }
    }

    /// All samples recorded under `name`.
    pub fn samples(&self, name: &str) -> &[f64] {
        self.samples.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Names of all counters, sorted.
    pub fn counter_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.counters.keys().copied()
    }

    /// Names of all sample series, sorted.
    pub fn sample_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.samples.keys().copied()
    }

    /// Adds a whole [`Traffic`] delta to `node` (used by the engine to
    /// fold dense per-shard traffic arrays into the sink).
    pub(crate) fn add_traffic(&mut self, node: NodeId, t: Traffic) {
        let e = self.traffic.entry(node).or_default();
        e.up_bytes += t.up_bytes;
        e.down_bytes += t.down_bytes;
        e.up_msgs += t.up_msgs;
        e.down_msgs += t.down_msgs;
    }

    /// Credits an outgoing message of `payload_len` bytes to `node`.
    pub fn record_up(&mut self, node: NodeId, payload_len: usize) {
        let t = self.traffic.entry(node).or_default();
        t.up_bytes += (payload_len + HEADER_OVERHEAD) as u64;
        t.up_msgs += 1;
    }

    /// Credits a delivered message of `payload_len` bytes to `node`.
    pub fn record_down(&mut self, node: NodeId, payload_len: usize) {
        let t = self.traffic.entry(node).or_default();
        t.down_bytes += (payload_len + HEADER_OVERHEAD) as u64;
        t.down_msgs += 1;
    }

    /// Cumulative traffic of `node`.
    pub fn traffic(&self, node: NodeId) -> Traffic {
        self.traffic.get(&node).copied().unwrap_or_default()
    }

    /// Snapshot of every node's cumulative traffic; diff two snapshots to
    /// get per-epoch bandwidth.
    pub fn traffic_snapshot(&self) -> BTreeMap<NodeId, Traffic> {
        self.traffic.clone()
    }

    /// Resets counters and samples but keeps traffic (useful between
    /// warm-up and measurement phases).
    pub fn reset_counters_and_samples(&mut self) {
        self.counters.clear();
        self.samples.clear();
        self.tags.clear();
    }
}

/// Difference in traffic between two snapshots, per node.
pub fn traffic_delta(
    before: &BTreeMap<NodeId, Traffic>,
    after: &BTreeMap<NodeId, Traffic>,
) -> BTreeMap<NodeId, Traffic> {
    let mut out = BTreeMap::new();
    for (&node, &t_after) in after {
        let t_before = before.get(&node).copied().unwrap_or_default();
        out.insert(
            node,
            Traffic {
                up_bytes: t_after.up_bytes - t_before.up_bytes,
                down_bytes: t_after.down_bytes - t_before.down_bytes,
                up_msgs: t_after.up_msgs - t_before.up_msgs,
                down_msgs: t_after.down_msgs - t_before.down_msgs,
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.count("x", 2);
        m.count("x", 3);
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.counter("unknown"), 0);
    }

    #[test]
    fn samples_accumulate() {
        let mut m = Metrics::new();
        m.sample("rtt", 1.0);
        m.sample("rtt", 2.5);
        assert_eq!(m.samples("rtt"), &[1.0, 2.5]);
        assert!(m.samples("other").is_empty());
    }

    #[test]
    fn traffic_includes_header_overhead() {
        let mut m = Metrics::new();
        let n = NodeId(1);
        m.record_up(n, 100);
        m.record_down(n, 50);
        let t = m.traffic(n);
        assert_eq!(t.up_bytes, 100 + HEADER_OVERHEAD as u64);
        assert_eq!(t.down_bytes, 50 + HEADER_OVERHEAD as u64);
        assert_eq!(t.up_msgs, 1);
        assert_eq!(t.down_msgs, 1);
    }

    #[test]
    fn snapshot_delta() {
        let mut m = Metrics::new();
        let n = NodeId(1);
        m.record_up(n, 100);
        let before = m.traffic_snapshot();
        m.record_up(n, 200);
        m.record_down(NodeId(2), 10);
        let after = m.traffic_snapshot();
        let delta = traffic_delta(&before, &after);
        assert_eq!(delta[&n].up_bytes, 200 + HEADER_OVERHEAD as u64);
        assert_eq!(delta[&n].up_msgs, 1);
        assert_eq!(delta[&NodeId(2)].down_msgs, 1);
    }

    #[test]
    fn reset_keeps_traffic() {
        let mut m = Metrics::new();
        m.count("c", 1);
        m.sample("s", 1.0);
        m.record_up(NodeId(1), 10);
        m.reset_counters_and_samples();
        assert_eq!(m.counter("c"), 0);
        assert!(m.samples("s").is_empty());
        assert_eq!(m.traffic(NodeId(1)).up_msgs, 1);
    }
}
