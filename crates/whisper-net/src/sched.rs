//! Deterministic event schedulers for the discrete-event engine.
//!
//! Two interchangeable priority queues sit behind [`EventQueue`]:
//!
//! * [`Scheduler::Heap`] — the classic `BinaryHeap` (`O(log n)`
//!   push/pop), kept as the reference implementation;
//! * [`Scheduler::Wheel`] — a hierarchical calendar queue
//!   ([`CalendarQueue`]): timing-wheel buckets over the discrete sim
//!   clock with an overflow heap for far-future timers, giving `O(1)`
//!   amortised push/pop on dense event streams.
//!
//! Both pop in exactly the same order — ascending by the canonical
//! event key `(at µs, src, seq)` (see DESIGN.md §12/§14) — so the
//! choice of scheduler is invisible to simulation traces. Keys must be
//! unique; the engine guarantees this via per-source monotone `seq`
//! counters. The determinism matrix in `tests/determinism.rs` diffs
//! heap-vs-wheel traces byte for byte, and `tests/proptests.rs` drives
//! randomized streams (same-instant ties, crash-deferral re-keys,
//! far-future promotions) through both.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Canonical scheduling key: `(at µs, src, seq)`.
///
/// `at` is the virtual due time in microseconds, `src` the canonical
/// source lane (0 for control events, `node + 1` for node events) and
/// `seq` a per-source monotone counter. Lexicographic order on this
/// triple is the engine-wide total event order.
pub type EventKey = (u64, u64, u64);

/// Types that expose a canonical [`EventKey`] can be scheduled.
pub trait Keyed {
    /// The item's scheduling key. Must be stable for the lifetime of
    /// the item while it sits in a queue, and unique per queue.
    fn key(&self) -> EventKey;
}

/// Which queue implementation an [`EventQueue`] uses.
///
/// Selected per simulation via `SimConfig::with_scheduler`; traces are
/// byte-identical either way (asserted by the determinism matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// Reference `BinaryHeap` scheduler (`O(log n)` push/pop).
    Heap,
    /// Hierarchical calendar queue (`O(1)` amortised on dense streams).
    Wheel,
}

impl Scheduler {
    /// Parse a scheduler name as used by the bench `--sched` flag.
    ///
    /// Accepts `"heap"` and `"wheel"`; returns `None` otherwise.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "heap" => Some(Scheduler::Heap),
            "wheel" => Some(Scheduler::Wheel),
            _ => None,
        }
    }
}

/// Heap adapter ordering items by their canonical key (min via
/// `Reverse`).
struct ByKey<T: Keyed>(T);

impl<T: Keyed> PartialEq for ByKey<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<T: Keyed> Eq for ByKey<T> {}
impl<T: Keyed> PartialOrd for ByKey<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Keyed> Ord for ByKey<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.key().cmp(&other.0.key())
    }
}

/// Log2 of the level-0 granule in microseconds (256 µs per bucket).
const G0_SHIFT: u32 = 8;
/// Log2 of the bucket count per wheel level.
const BUCKET_BITS: u32 = 10;
/// Buckets per wheel level.
const NB: u64 = 1 << BUCKET_BITS;
/// Bucket index mask.
const MASK: u64 = NB - 1;

/// Deterministic hierarchical calendar queue.
///
/// Two timing-wheel levels over the discrete sim clock plus an
/// overflow heap:
///
/// * **L0** — 1024 buckets of 2⁸ µs (256 µs) granules ⇒ ≈ 262 ms span;
/// * **L1** — 1024 buckets of 2¹⁸ µs (≈ 262 ms) granules ⇒ ≈ 268 s
///   span; drained one granule at a time into L0 as the cursor crosses
///   an L1 boundary;
/// * **overflow** — a `BinaryHeap` for items due beyond the L1 span
///   (long-lived timers), promoted into the wheels as their window
///   comes into range.
///
/// Buckets are unordered until first drained; the cursor bucket is
/// lazily sorted **descending** by key once and popped from the back,
/// so each item pays one `O(1)` placement plus an `O(log b)` share of
/// its bucket's sort (`b` = bucket occupancy). Late arrivals into the
/// already-sorted cursor bucket (same-instant sends, clamped
/// re-inserts after an idle jump) are placed by binary search, which
/// keeps pops globally key-ordered — the property the determinism
/// matrix relies on.
pub struct CalendarQueue<T: Keyed> {
    /// Level-0 buckets (256 µs granules).
    l0: Vec<Vec<T>>,
    /// Whether the corresponding L0 bucket is currently sorted
    /// (descending by key). Only ever true for the cursor bucket.
    l0_sorted: Vec<bool>,
    /// Level-1 buckets (≈ 262 ms granules).
    l1: Vec<Vec<T>>,
    /// Items due beyond the L1 span.
    overflow: BinaryHeap<Reverse<ByKey<T>>>,
    /// Cursor: the L0 granule currently being drained.
    cur0: u64,
    /// Total items across all tiers.
    len: usize,
    /// Items currently in the L0 ring.
    l0_len: usize,
    /// Items currently in the L1 ring.
    l1_len: usize,
}

impl<T: Keyed> CalendarQueue<T> {
    /// An empty queue with the cursor at virtual time zero.
    pub fn new() -> Self {
        CalendarQueue {
            l0: (0..NB).map(|_| Vec::new()).collect(),
            l0_sorted: vec![false; NB as usize],
            l1: (0..NB).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            cur0: 0,
            len: 0,
            l0_len: 0,
            l1_len: 0,
        }
    }

    /// Pre-size every L0 bucket for an expected total of `n` items so
    /// steady-state pushes never grow a bucket.
    pub fn reserve(&mut self, n: usize) {
        let per_bucket = n >> BUCKET_BITS;
        if per_bucket == 0 {
            return;
        }
        for b in &mut self.l0 {
            b.reserve(per_bucket);
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an item.
    pub fn push(&mut self, item: T) {
        let d0 = item.key().0 >> G0_SHIFT;
        self.place(item, d0);
        self.len += 1;
    }

    /// Remove and return the item with the smallest key.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        self.advance_to_nonempty();
        let b = (self.cur0 & MASK) as usize;
        self.sort_cursor_bucket(b);
        let item = self.l0[b].pop().expect("cursor bucket nonempty after advance");
        self.len -= 1;
        self.l0_len -= 1;
        Some(item)
    }

    /// The smallest key currently queued, without removing its item.
    ///
    /// Takes `&mut self` because peeking advances the cursor to the
    /// next occupied granule and sorts its bucket (both cached for the
    /// following [`pop`](Self::pop)).
    pub fn peek_key(&mut self) -> Option<EventKey> {
        if self.len == 0 {
            return None;
        }
        self.advance_to_nonempty();
        let b = (self.cur0 & MASK) as usize;
        self.sort_cursor_bucket(b);
        Some(self.l0[b].last().expect("cursor bucket nonempty after advance").key())
    }

    /// Route an item to its tier. `d0` is the item's L0 granule
    /// (`at >> G0_SHIFT`). Maintains `l0_len`/`l1_len` but not `len`.
    fn place(&mut self, item: T, d0: u64) {
        let cur0 = self.cur0;
        if d0 <= cur0 {
            // Current-granule or late arrival (the cursor can sit past
            // a quiet granule after an idle jump): clamp into the
            // cursor bucket, preserving sortedness if already sorted.
            let b = (cur0 & MASK) as usize;
            if self.l0_sorted[b] {
                let key = item.key();
                let idx = self.l0[b].partition_point(|x| x.key() > key);
                self.l0[b].insert(idx, item);
            } else {
                self.l0[b].push(item);
            }
            self.l0_len += 1;
        } else if d0 - cur0 < NB {
            self.l0[(d0 & MASK) as usize].push(item);
            self.l0_len += 1;
        } else {
            let d1 = d0 >> BUCKET_BITS;
            let cur1 = cur0 >> BUCKET_BITS;
            if d1 - cur1 < NB {
                self.l1[(d1 & MASK) as usize].push(item);
                self.l1_len += 1;
            } else {
                self.overflow.push(Reverse(ByKey(item)));
            }
        }
    }

    /// Sort the cursor bucket descending by key (once per drain).
    fn sort_cursor_bucket(&mut self, b: usize) {
        if !self.l0_sorted[b] {
            self.l0[b].sort_unstable_by_key(|x| Reverse(x.key()));
            self.l0_sorted[b] = true;
        }
    }

    /// Move the cursor to the next granule with a nonempty L0 bucket,
    /// promoting L1/overflow windows as boundaries are crossed.
    /// Requires `len > 0`.
    fn advance_to_nonempty(&mut self) {
        loop {
            let b = (self.cur0 & MASK) as usize;
            if !self.l0[b].is_empty() {
                return;
            }
            self.l0_sorted[b] = false;
            if self.l0_len > 0 {
                // Walk: something is within the current L0 window.
                self.cur0 += 1;
                if self.cur0 & MASK == 0 {
                    self.promote();
                }
                continue;
            }
            if self.l1_len > 0 {
                // Jump to the nearest occupied L1 granule. Every L1
                // item satisfies cur1 < d1 < cur1 + NB (window
                // invariant), so each bucket holds exactly one granule
                // value and the scan below finds the minimum.
                let cur1 = self.cur0 >> BUCKET_BITS;
                let g = (1..NB)
                    .map(|k| cur1 + k)
                    .find(|g| !self.l1[(g & MASK) as usize].is_empty())
                    .expect("l1_len > 0 implies an occupied L1 bucket in window");
                self.cur0 = g << BUCKET_BITS;
                self.promote();
                continue;
            }
            // Only overflow left: jump straight to its minimum granule.
            let top = self.overflow.peek().expect("len > 0 with empty wheels");
            let d1 = (top.0 .0.key().0 >> G0_SHIFT) >> BUCKET_BITS;
            self.cur0 = d1 << BUCKET_BITS;
            self.promote();
        }
    }

    /// Pull newly-eligible overflow items and drain the L1 bucket at
    /// the (new) current L1 granule into L0. Called whenever `cur0`
    /// crosses an L1 boundary.
    fn promote(&mut self) {
        let cur1 = self.cur0 >> BUCKET_BITS;
        loop {
            let eligible = match self.overflow.peek() {
                Some(top) => ((top.0 .0.key().0 >> G0_SHIFT) >> BUCKET_BITS) < cur1 + NB,
                None => false,
            };
            if !eligible {
                break;
            }
            let Reverse(ByKey(item)) = self.overflow.pop().expect("peeked above");
            let d0 = item.key().0 >> G0_SHIFT;
            self.place(item, d0);
        }
        let b = (cur1 & MASK) as usize;
        let mut bucket = std::mem::take(&mut self.l1[b]);
        self.l1_len -= bucket.len();
        for item in bucket.drain(..) {
            let d0 = item.key().0 >> G0_SHIFT;
            self.place(item, d0);
        }
        // Hand the emptied allocation back so the bucket keeps its
        // capacity for the next wrap of the wheel.
        self.l1[b] = bucket;
    }
}

impl<T: Keyed> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// The per-shard event queue: a [`Scheduler`]-selected priority queue
/// popping items in ascending canonical-key order.
pub struct EventQueue<T: Keyed> {
    inner: Inner<T>,
}

enum Inner<T: Keyed> {
    Heap(BinaryHeap<Reverse<ByKey<T>>>),
    Wheel(CalendarQueue<T>),
}

impl<T: Keyed> EventQueue<T> {
    /// An empty queue using the given scheduler.
    pub fn new(sched: Scheduler) -> Self {
        EventQueue {
            inner: match sched {
                Scheduler::Heap => Inner::Heap(BinaryHeap::new()),
                Scheduler::Wheel => Inner::Wheel(CalendarQueue::new()),
            },
        }
    }

    /// Pre-size internal storage for an expected population of `n`
    /// concurrently-queued items.
    pub fn reserve(&mut self, n: usize) {
        match &mut self.inner {
            Inner::Heap(h) => h.reserve(n),
            Inner::Wheel(w) => w.reserve(n),
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Heap(h) => h.len(),
            Inner::Wheel(w) => w.len(),
        }
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert an item.
    pub fn push(&mut self, item: T) {
        match &mut self.inner {
            Inner::Heap(h) => h.push(Reverse(ByKey(item))),
            Inner::Wheel(w) => w.push(item),
        }
    }

    /// Remove and return the item with the smallest key.
    pub fn pop(&mut self) -> Option<T> {
        match &mut self.inner {
            Inner::Heap(h) => h.pop().map(|Reverse(ByKey(item))| item),
            Inner::Wheel(w) => w.pop(),
        }
    }

    /// The smallest key queued, if any (`&mut` for the wheel's cursor
    /// advance; see [`CalendarQueue::peek_key`]).
    pub fn peek_key(&mut self) -> Option<EventKey> {
        match &mut self.inner {
            Inner::Heap(h) => h.peek().map(|r| r.0 .0.key()),
            Inner::Wheel(w) => w.peek_key(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Item(EventKey);
    impl Keyed for Item {
        fn key(&self) -> EventKey {
            self.0
        }
    }

    fn drain(q: &mut CalendarQueue<Item>) -> Vec<EventKey> {
        let mut out = Vec::new();
        while let Some(it) = q.pop() {
            out.push(it.0);
        }
        out
    }

    #[test]
    fn pops_in_key_order_across_tiers() {
        let mut q = CalendarQueue::new();
        // Overflow (far future), L1 (mid), L0 (near), same-granule ties.
        let keys = [
            (5, 3, 0),
            (5, 1, 0),
            (5, 1, 1),
            (300, 0, 0),
            (100_000, 2, 0),      // later L0 window
            (5_000_000, 4, 0),    // L1 tier
            (400_000_000, 9, 0),  // overflow tier (> 268 s)
            (400_000_000, 2, 0),  // overflow tie on `at`
        ];
        for k in keys {
            q.push(Item(k));
        }
        let mut expect: Vec<EventKey> = keys.to_vec();
        expect.sort();
        assert_eq!(drain(&mut q), expect);
        assert!(q.is_empty());
    }

    #[test]
    fn late_push_after_idle_jump_still_sorts_first() {
        let mut q = CalendarQueue::new();
        q.push(Item((300_000_000, 1, 0))); // parks cursor far ahead on peek
        assert_eq!(q.peek_key(), Some((300_000_000, 1, 0)));
        // The engine can schedule work at an earlier granule than the
        // cursor (harness injection after an idle skip): it must still
        // pop first.
        q.push(Item((10, 1, 0)));
        q.push(Item((300_000_000, 0, 5)));
        assert_eq!(q.pop(), Some(Item((10, 1, 0))));
        assert_eq!(q.pop(), Some(Item((300_000_000, 0, 5))));
        assert_eq!(q.pop(), Some(Item((300_000_000, 1, 0))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn sorted_cursor_bucket_accepts_interleaved_pushes() {
        let mut q = CalendarQueue::new();
        for src in [9u64, 3, 7] {
            q.push(Item((50, src, 0)));
        }
        assert_eq!(q.pop(), Some(Item((50, 3, 0)))); // sorts the bucket
        q.push(Item((50, 1, 0))); // binary-insert into sorted bucket
        q.push(Item((60, 0, 0)));
        assert_eq!(q.pop(), Some(Item((50, 1, 0))));
        assert_eq!(q.pop(), Some(Item((50, 7, 0))));
        assert_eq!(q.pop(), Some(Item((50, 9, 0))));
        assert_eq!(q.pop(), Some(Item((60, 0, 0))));
    }

    #[test]
    fn event_queue_variants_agree() {
        let keys: Vec<EventKey> =
            (0..500).map(|i| ((i * 7919) % 100_000, i % 5, i)).collect();
        let mut heap = EventQueue::new(Scheduler::Heap);
        let mut wheel = EventQueue::new(Scheduler::Wheel);
        wheel.reserve(keys.len());
        for &k in &keys {
            heap.push(Item(k));
            wheel.push(Item(k));
        }
        assert_eq!(heap.len(), wheel.len());
        loop {
            assert_eq!(heap.peek_key(), wheel.peek_key());
            match (heap.pop(), wheel.pop()) {
                (None, None) => break,
                (a, b) => assert_eq!(a, b),
            }
        }
    }
}
