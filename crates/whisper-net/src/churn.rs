//! Churn scripting, mirroring the SPLAY churn module used for Table I.
//!
//! The paper's script (printed under Table I) is:
//!
//! ```text
//! from 0s to 30s join 1000
//! at 300s set replacement ratio to 100%
//! from 300s to 1200s const churn X% each 60s
//! at 1200s stop
//! ```
//!
//! [`ChurnScript`] expresses that family of scripts; [`run_with_churn`]
//! executes one against a [`Sim`], creating nodes through a caller-provided
//! factory and killing uniformly random victims.

use crate::id::NodeId;
use crate::sim::Sim;
use crate::time::{SimDuration, SimTime};
use whisper_rand::Rng;

/// One scripted churn phase.
#[derive(Clone, Debug, PartialEq)]
pub enum ChurnPhase {
    /// Join `count` nodes spread uniformly over `[from, to]`.
    RampJoin {
        /// Phase start.
        from: SimTime,
        /// Phase end.
        to: SimTime,
        /// Number of nodes to join.
        count: usize,
    },
    /// Every `interval` within `[from, to)`, kill `fraction` of the
    /// current population and join `fraction * replacement_ratio` new
    /// nodes.
    ConstChurn {
        /// Phase start.
        from: SimTime,
        /// Phase end (exclusive).
        to: SimTime,
        /// Fraction of the population churned per interval (e.g. `0.01`
        /// for 1%).
        fraction: f64,
        /// Interval between churn rounds.
        interval: SimDuration,
        /// How many joins per leave (1.0 keeps the population stable).
        replacement_ratio: f64,
    },
}

/// A churn script: an ordered list of phases and a stop time.
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnScript {
    /// The scripted phases.
    pub phases: Vec<ChurnPhase>,
    /// When the run ends.
    pub stop_at: SimTime,
}

impl ChurnScript {
    /// The exact Table I script with churn rate `x_percent` % per minute
    /// (the paper evaluates X ∈ {0, 0.2, 1, 5, 10}).
    pub fn paper_table1(x_percent: f64) -> Self {
        let mut phases = vec![ChurnPhase::RampJoin {
            from: SimTime::ZERO,
            to: SimTime::from_micros(30_000_000),
            count: 1000,
        }];
        if x_percent > 0.0 {
            phases.push(ChurnPhase::ConstChurn {
                from: SimTime::from_micros(300_000_000),
                to: SimTime::from_micros(1_200_000_000),
                fraction: x_percent / 100.0,
                interval: SimDuration::from_secs(60),
                replacement_ratio: 1.0,
            });
        }
        ChurnScript { phases, stop_at: SimTime::from_micros(1_200_000_000) }
    }

    /// All times at which the driver must act, sorted and deduplicated.
    pub fn ticks(&self) -> Vec<SimTime> {
        let mut ticks = Vec::new();
        for phase in &self.phases {
            match *phase {
                ChurnPhase::RampJoin { from, to, count } => {
                    // One tick per joining node, spread uniformly.
                    let span = to.since(from).as_micros();
                    for i in 0..count {
                        let off = if count > 1 {
                            span * i as u64 / (count as u64 - 1)
                        } else {
                            0
                        };
                        ticks.push(from + SimDuration::from_micros(off));
                    }
                }
                ChurnPhase::ConstChurn { from, to, interval, .. } => {
                    let mut t = from;
                    while t < to {
                        ticks.push(t);
                        t += interval;
                    }
                }
            }
        }
        ticks.push(self.stop_at);
        ticks.sort_unstable();
        ticks.dedup();
        ticks
    }

    /// The action scheduled at time `t` given the current population.
    pub fn action_at(&self, t: SimTime, population: usize) -> ChurnAction {
        let mut action = ChurnAction::default();
        for phase in &self.phases {
            match *phase {
                ChurnPhase::RampJoin { from, to, count } => {
                    let span = to.since(from).as_micros();
                    for i in 0..count {
                        let off = if count > 1 {
                            span * i as u64 / (count as u64 - 1)
                        } else {
                            0
                        };
                        if from + SimDuration::from_micros(off) == t {
                            action.join += 1;
                        }
                    }
                }
                ChurnPhase::ConstChurn { from, to, fraction, interval, replacement_ratio } => {
                    if t >= from && t < to {
                        let since = t.since(from).as_micros();
                        if since.is_multiple_of(interval.as_micros()) {
                            let leave = (population as f64 * fraction).round() as usize;
                            action.leave += leave;
                            action.join += (leave as f64 * replacement_ratio).round() as usize;
                        }
                    }
                }
            }
        }
        action
    }
}

/// Joins and leaves to apply at one tick.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChurnAction {
    /// Nodes to add.
    pub join: usize,
    /// Nodes to remove.
    pub leave: usize,
}

/// Runs `sim` under `script`.
///
/// * `factory` is called for every join; it must add one node to the
///   simulation (choosing protocol stack and NAT type) and return its id.
/// * `protected` nodes are never selected as churn victims (e.g. the
///   bootstrap node).
/// * `on_tick` is invoked after each tick has been applied, letting the
///   harness snapshot metrics mid-run.
pub fn run_with_churn(
    sim: &mut Sim,
    script: &ChurnScript,
    mut factory: impl FnMut(&mut Sim) -> NodeId,
    protected: &[NodeId],
    mut on_tick: impl FnMut(&mut Sim, SimTime),
) {
    for tick in script.ticks() {
        sim.run_until(tick);
        let action = script.action_at(tick, sim.len());
        // Kills first, then joins — a replacement never replaces itself.
        for _ in 0..action.leave {
            let candidates: Vec<NodeId> = sim
                .node_ids()
                .into_iter()
                .filter(|id| !protected.contains(id))
                .collect();
            if candidates.is_empty() {
                break;
            }
            let victim = candidates[sim.rng().gen_range(0..candidates.len())];
            sim.remove_node(victim);
        }
        for _ in 0..action.join {
            factory(sim);
        }
        on_tick(sim, tick);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nat::NatType;
    use crate::sim::{Ctx, Protocol, SimConfig};
    use crate::Endpoint;

    struct Noop;
    impl Protocol for Noop {
        fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
        fn on_message(&mut self, _: &mut Ctx<'_>, _: NodeId, _: Endpoint, _: &crate::Payload) {}
        fn on_timer(&mut self, _: &mut Ctx<'_>, _: u64) {}
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn paper_script_shape() {
        let s = ChurnScript::paper_table1(1.0);
        assert_eq!(s.phases.len(), 2);
        assert_eq!(s.stop_at.as_secs(), 1200);
        let no_churn = ChurnScript::paper_table1(0.0);
        assert_eq!(no_churn.phases.len(), 1);
    }

    #[test]
    fn ramp_join_reaches_target_population() {
        let mut sim = Sim::new(SimConfig::ideal(1));
        let script = ChurnScript {
            phases: vec![ChurnPhase::RampJoin {
                from: SimTime::ZERO,
                to: SimTime::from_micros(10_000_000),
                count: 50,
            }],
            stop_at: SimTime::from_micros(20_000_000),
        };
        run_with_churn(
            &mut sim,
            &script,
            |sim| sim.add_node(Box::new(Noop), NatType::Public),
            &[],
            |_, _| {},
        );
        assert_eq!(sim.len(), 50);
    }

    #[test]
    fn const_churn_keeps_population_stable_with_full_replacement() {
        let mut sim = Sim::new(SimConfig::ideal(2));
        for _ in 0..100 {
            sim.add_node(Box::new(Noop), NatType::Public);
        }
        let script = ChurnScript {
            phases: vec![ChurnPhase::ConstChurn {
                from: SimTime::ZERO,
                to: SimTime::from_micros(300_000_000),
                fraction: 0.05,
                interval: SimDuration::from_secs(60),
                replacement_ratio: 1.0,
            }],
            stop_at: SimTime::from_micros(300_000_000),
        };
        let mut ticks = 0;
        run_with_churn(
            &mut sim,
            &script,
            |sim| sim.add_node(Box::new(Noop), NatType::Public),
            &[],
            |sim, _| {
                ticks += 1;
                assert_eq!(sim.len(), 100);
            },
        );
        assert_eq!(ticks, 6); // t = 0, 60, ..., 300 (stop tick included)
    }

    #[test]
    fn population_shrinks_without_replacement() {
        let mut sim = Sim::new(SimConfig::ideal(3));
        for _ in 0..100 {
            sim.add_node(Box::new(Noop), NatType::Public);
        }
        let script = ChurnScript {
            phases: vec![ChurnPhase::ConstChurn {
                from: SimTime::ZERO,
                to: SimTime::from_micros(120_000_000),
                fraction: 0.10,
                interval: SimDuration::from_secs(60),
                replacement_ratio: 0.0,
            }],
            stop_at: SimTime::from_micros(120_000_000),
        };
        run_with_churn(
            &mut sim,
            &script,
            |sim| sim.add_node(Box::new(Noop), NatType::Public),
            &[],
            |_, _| {},
        );
        assert_eq!(sim.len(), 81); // 100 → 90 → 81
    }

    #[test]
    fn protected_nodes_survive() {
        let mut sim = Sim::new(SimConfig::ideal(4));
        let bootstrap = sim.add_node(Box::new(Noop), NatType::Public);
        for _ in 0..20 {
            sim.add_node(Box::new(Noop), NatType::Public);
        }
        let script = ChurnScript {
            phases: vec![ChurnPhase::ConstChurn {
                from: SimTime::ZERO,
                to: SimTime::from_micros(600_000_000),
                fraction: 0.5,
                interval: SimDuration::from_secs(60),
                replacement_ratio: 0.0,
            }],
            stop_at: SimTime::from_micros(600_000_000),
        };
        run_with_churn(
            &mut sim,
            &script,
            |sim| sim.add_node(Box::new(Noop), NatType::Public),
            &[bootstrap],
            |_, _| {},
        );
        assert!(sim.contains(bootstrap));
    }

    #[test]
    fn table1_rates_match_paper_counts() {
        // "Churn rate: X=1% / minute (150 leaves & 150 joins / 15 min.)"
        // with a 1,000-node population: 10 leaves per minute × 15.
        let script = ChurnScript::paper_table1(1.0);
        let action = script.action_at(SimTime::from_micros(300_000_000), 1000);
        assert_eq!(action.leave, 10);
        assert_eq!(action.join, 10);
        // 15 churn rounds in [300, 1200): 150 total, matching the paper.
        let rounds = script
            .ticks()
            .into_iter()
            .filter(|t| {
                let a = script.action_at(*t, 1000);
                a.leave > 0
            })
            .count();
        assert_eq!(rounds, 15);
    }
}
