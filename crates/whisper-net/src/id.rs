use crate::wire::{WireDecode, WireError, WireReader, WireWriter};
use std::fmt;

/// Identifier of a simulated node (one node = one host).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl NodeId {
    /// Serializes to 8 big-endian bytes (used as the opaque onion-layer
    /// address format).
    pub fn to_bytes(self) -> [u8; 8] {
        self.0.to_be_bytes()
    }

    /// Parses the 8-byte form produced by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Option<NodeId> {
        let arr: [u8; 8] = bytes.try_into().ok()?;
        Some(NodeId(u64::from_be_bytes(arr)))
    }
}

impl crate::wire::WireEncode for NodeId {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.0);
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl WireDecode for NodeId {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(NodeId(r.take_u64()?))
    }
}

/// A node's externally visible transport endpoint.
///
/// Public nodes always use port 0. NATted nodes are reachable only on
/// external ports allocated by their NAT device; for symmetric NATs the
/// port differs per destination, which is exactly what makes hole punching
/// fail against port-sensitive filters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Endpoint {
    /// The host.
    pub node: NodeId,
    /// External port on the host's NAT device (0 for public hosts).
    pub port: u16,
}

impl Endpoint {
    /// Endpoint of a public (un-NATted) host.
    pub fn public(node: NodeId) -> Endpoint {
        Endpoint { node, port: 0 }
    }
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

impl crate::wire::WireEncode for Endpoint {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.node.0);
        w.put_u16(self.port);
    }
    fn encoded_len(&self) -> usize {
        10
    }
}

impl WireDecode for Endpoint {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Endpoint {
            node: NodeId(r.take_u64()?),
            port: r.take_u16()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_bytes_round_trip() {
        let id = NodeId(0xdead_beef_1234);
        assert_eq!(NodeId::from_bytes(&id.to_bytes()), Some(id));
        assert_eq!(NodeId::from_bytes(&[1, 2, 3]), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(format!("{:?}", Endpoint { node: NodeId(7), port: 9 }), "n7:9");
    }

    #[test]
    fn public_endpoint_uses_port_zero() {
        assert_eq!(Endpoint::public(NodeId(3)).port, 0);
    }
}
