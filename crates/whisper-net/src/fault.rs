//! Deterministic fault injection.
//!
//! A [`FaultPlan`] scripts failures against a running [`crate::sim::Sim`]:
//! network partitions, Gilbert–Elliott burst loss, latency spikes,
//! crash-and-restart of individual nodes, and NAT rebinding. The plan is
//! *data*, not callbacks — the engine interprets it at well-defined points
//! (send time, delivery time, and scripted instants routed through the
//! ordinary event queue), and every probabilistic decision draws from the
//! sending node's link RNG stream. Two runs with the same seed and the
//! same plan therefore produce byte-identical traces — for any shard
//! count — which is what makes chaos scenarios regression-testable (see
//! `tests/chaos.rs` and DESIGN.md §11–12).
//!
//! Every packet a fault kills is attributed to a named metric counter
//! (`net.drop_partition`, `net.lost_burst`, `net.drop_crashed`, …); the
//! chaos suite asserts that the sum of those counters plus deliveries
//! plus in-flight messages equals the number of sends — no silent loss.

use crate::id::NodeId;
use crate::time::SimTime;
use std::collections::BTreeSet;
use whisper_rand::rngs::StdRng;
use whisper_rand::Rng;

/// A two-state Markov (Gilbert–Elliott) burst-loss model.
///
/// Each **sending node** runs its own chain (modelling a bursty uplink),
/// stepped once per packet that node sends while the fault window is
/// active: first the state may flip (good ↔ bad), then the packet is lost
/// with the state's loss probability. The chain draws from the sender's
/// link RNG stream, so its trajectory is a pure function of
/// `(seed, sender)` — independent of how nodes are partitioned across
/// simulator shards.
#[derive(Clone, Debug)]
pub struct GilbertElliott {
    /// Per-packet probability of entering the bad (bursty) state.
    pub p_good_to_bad: f64,
    /// Per-packet probability of leaving the bad state.
    pub p_bad_to_good: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A heavy but realistic default: bursts start rarely, last ~5 packets
    /// on average, and kill more than half of what they touch. Mean loss
    /// over a long window is ≈ `p_g2b/(p_g2b+p_b2g) · loss_bad` ≈ 4%.
    pub fn heavy() -> Self {
        GilbertElliott {
            p_good_to_bad: 0.02,
            p_bad_to_good: 0.25,
            loss_good: 0.0,
            loss_bad: 0.6,
        }
    }

    /// Steps the chain once for one packet; returns whether it is lost.
    fn step(&self, bad: &mut bool, rng: &mut StdRng) -> bool {
        let flip = if *bad { self.p_bad_to_good } else { self.p_good_to_bad };
        if flip > 0.0 && rng.gen_bool(flip) {
            *bad = !*bad;
        }
        let loss = if *bad { self.loss_bad } else { self.loss_good };
        loss > 0.0 && rng.gen_bool(loss)
    }
}

/// One scripted failure.
#[derive(Clone, Debug)]
pub enum Fault {
    /// Bisects the network: while active, any packet whose sender and
    /// receiver are on opposite sides of `island` is dropped (counted as
    /// `net.drop_partition`). Heals at `heal_at`.
    Partition {
        /// One side of the bisection; everything else is the other side.
        island: BTreeSet<NodeId>,
        /// When the partition appears.
        from: SimTime,
        /// When it heals.
        heal_at: SimTime,
    },
    /// Applies a [`GilbertElliott`] chain to every packet sent while the
    /// window `[from, to)` is active (drops counted as `net.lost_burst`).
    BurstLoss {
        /// Window start.
        from: SimTime,
        /// Window end.
        to: SimTime,
        /// The burst-loss chain.
        model: GilbertElliott,
    },
    /// Multiplies every sampled one-way delay by `factor` while the
    /// window `[from, to)` is active (counted as `net.delay_spiked`).
    LatencySpike {
        /// Window start.
        from: SimTime,
        /// Window end.
        to: SimTime,
        /// Delay multiplier (≥ 2 to be observable).
        factor: u64,
    },
    /// Crashes `node` at `at` and restarts it at `restart_at`. While down
    /// the node receives nothing (`net.drop_crashed`), its timers are
    /// deferred to the restart instant, and its NAT bindings are wiped.
    /// On restart the engine invokes
    /// [`crate::sim::Protocol::on_crash_restart`] so the protocol can
    /// model volatile-state loss.
    CrashRestart {
        /// The node that crashes.
        node: NodeId,
        /// Crash instant.
        at: SimTime,
        /// Restart instant (must be ≥ `at`).
        restart_at: SimTime,
    },
    /// Replaces `node`'s NAT device with a fresh one of the same type at
    /// `at`: every mapping and association rule vanishes, exactly like a
    /// consumer NAT rebooting (counted as `net.fault_nat_rebind`).
    NatRebind {
        /// The node whose NAT reboots.
        node: NodeId,
        /// Rebind instant.
        at: SimTime,
    },
}

/// An ordered script of [`Fault`]s, installed into a sim with
/// [`crate::sim::Sim::install_fault_plan`].
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// The scripted faults, in installation order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a partition of `island` vs. the rest over `[from, heal_at)`.
    pub fn partition(
        mut self,
        island: impl IntoIterator<Item = NodeId>,
        from: SimTime,
        heal_at: SimTime,
    ) -> Self {
        self.faults.push(Fault::Partition {
            island: island.into_iter().collect(),
            from,
            heal_at,
        });
        self
    }

    /// Adds a burst-loss window.
    pub fn burst_loss(mut self, from: SimTime, to: SimTime, model: GilbertElliott) -> Self {
        self.faults.push(Fault::BurstLoss { from, to, model });
        self
    }

    /// Adds a latency-spike window.
    pub fn latency_spike(mut self, from: SimTime, to: SimTime, factor: u64) -> Self {
        self.faults.push(Fault::LatencySpike { from, to, factor });
        self
    }

    /// Adds a crash-and-restart of `node`.
    pub fn crash_restart(mut self, node: NodeId, at: SimTime, restart_at: SimTime) -> Self {
        assert!(restart_at >= at, "restart_at must not precede the crash");
        self.faults.push(Fault::CrashRestart { node, at, restart_at });
        self
    }

    /// Adds a NAT rebind of `node`.
    pub fn nat_rebind(mut self, node: NodeId, at: SimTime) -> Self {
        self.faults.push(Fault::NatRebind { node, at });
        self
    }
}

/// Engine-side runtime state for installed faults. Owned by the sim and
/// shared read-only across shards; methods are called from the
/// send/deliver paths. Mutable per-sender chain state (the Gilbert–Elliott
/// `bad` flags) lives in the per-node arena slots, not here, so shards
/// never contend on it.
#[derive(Clone, Debug, Default)]
pub(crate) struct FaultState {
    faults: Vec<Fault>,
}

impl FaultState {
    /// Appends a plan's faults (point-in-time actions are scheduled by the
    /// sim separately, through the event queue).
    pub(crate) fn install(&mut self, plan: FaultPlan) {
        self.faults.extend(plan.faults);
    }

    /// Whether an active partition separates `a` from `b`.
    pub(crate) fn partition_blocks(&self, now: SimTime, a: NodeId, b: NodeId) -> bool {
        self.faults.iter().any(|f| match f {
            Fault::Partition { island, from, heal_at } => {
                now >= *from && now < *heal_at && island.contains(&a) != island.contains(&b)
            }
            _ => false,
        })
    }

    /// Steps every active burst-loss chain of one sender once; returns
    /// whether any of them drops this packet. `ge_bad` is the sender's
    /// per-fault chain state (indexed like `faults`, grown lazily) and
    /// `rng` the sender's link RNG — both are shard-local, so traces are
    /// independent of shard count, and no draw happens outside an active
    /// window, so traces outside fault windows are unchanged.
    pub(crate) fn burst_drop(
        &self,
        now: SimTime,
        ge_bad: &mut Vec<bool>,
        rng: &mut StdRng,
    ) -> bool {
        let mut dropped = false;
        for (i, f) in self.faults.iter().enumerate() {
            if let Fault::BurstLoss { from, to, model } = f {
                if now >= *from && now < *to {
                    if ge_bad.len() <= i {
                        ge_bad.resize(i + 1, false);
                    }
                    if model.step(&mut ge_bad[i], rng) {
                        dropped = true;
                    }
                }
            }
        }
        dropped
    }

    /// The delay multiplier currently in force (1 when no spike is
    /// active; the maximum factor when several overlap).
    pub(crate) fn delay_factor(&self, now: SimTime) -> u64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::LatencySpike { from, to, factor } if now >= *from && now < *to => {
                    Some(*factor)
                }
                _ => None,
            })
            .max()
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_rand::SeedableRng;

    #[test]
    fn partition_blocks_only_across_the_cut() {
        let mut fs = FaultState::default();
        fs.install(FaultPlan::new().partition(
            [NodeId(1), NodeId(2)],
            SimTime::from_micros(10),
            SimTime::from_micros(20),
        ));
        let mid = SimTime::from_micros(15);
        assert!(fs.partition_blocks(mid, NodeId(1), NodeId(3)));
        assert!(fs.partition_blocks(mid, NodeId(3), NodeId(2)));
        assert!(!fs.partition_blocks(mid, NodeId(1), NodeId(2)), "same island");
        assert!(!fs.partition_blocks(mid, NodeId(3), NodeId(4)), "same island");
        assert!(!fs.partition_blocks(SimTime::from_micros(5), NodeId(1), NodeId(3)));
        assert!(
            !fs.partition_blocks(SimTime::from_micros(20), NodeId(1), NodeId(3)),
            "heals at heal_at"
        );
    }

    #[test]
    fn burst_chain_is_deterministic_and_window_scoped() {
        let run = |seed| {
            let mut fs = FaultState::default();
            fs.install(FaultPlan::new().burst_loss(
                SimTime::from_micros(0),
                SimTime::from_micros(100),
                GilbertElliott::heavy(),
            ));
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ge_bad = Vec::new();
            (0..200u64)
                .map(|i| fs.burst_drop(SimTime::from_micros(i), &mut ge_bad, &mut rng))
                .collect::<Vec<_>>()
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed, same drop pattern");
        assert!(a[..100].iter().any(|&d| d), "heavy chain drops something");
        assert!(a[100..].iter().all(|&d| !d), "no drops outside the window");
    }

    #[test]
    fn burst_losses_cluster() {
        // The point of Gilbert–Elliott: losses arrive in runs, not
        // independently. Count adjacent drop pairs and compare with what
        // independent losses at the same rate would produce.
        let mut fs = FaultState::default();
        fs.install(FaultPlan::new().burst_loss(
            SimTime::ZERO,
            SimTime::from_micros(100_000),
            GilbertElliott::heavy(),
        ));
        let mut rng = StdRng::seed_from_u64(7);
        let mut ge_bad = Vec::new();
        let drops: Vec<bool> = (0..50_000u64)
            .map(|i| fs.burst_drop(SimTime::from_micros(i), &mut ge_bad, &mut rng))
            .collect();
        let total = drops.iter().filter(|&&d| d).count() as f64;
        let pairs = drops.windows(2).filter(|w| w[0] && w[1]).count() as f64;
        let rate = total / drops.len() as f64;
        // Independent losses: P(pair) = rate²; bursty losses do far better.
        let independent_pairs = rate * rate * drops.len() as f64;
        assert!(
            pairs > 3.0 * independent_pairs,
            "losses do not cluster: {pairs} adjacent pairs vs {independent_pairs:.1} expected if independent"
        );
    }

    #[test]
    fn delay_factor_takes_max_of_overlapping_spikes() {
        let mut fs = FaultState::default();
        fs.install(
            FaultPlan::new()
                .latency_spike(SimTime::from_micros(0), SimTime::from_micros(100), 3)
                .latency_spike(SimTime::from_micros(50), SimTime::from_micros(150), 8),
        );
        assert_eq!(fs.delay_factor(SimTime::from_micros(10)), 3);
        assert_eq!(fs.delay_factor(SimTime::from_micros(75)), 8);
        assert_eq!(fs.delay_factor(SimTime::from_micros(120)), 8);
        assert_eq!(fs.delay_factor(SimTime::from_micros(200)), 1);
    }

    #[test]
    #[should_panic(expected = "restart_at must not precede")]
    fn crash_restart_validates_order() {
        let _ = FaultPlan::new().crash_restart(
            NodeId(1),
            SimTime::from_micros(10),
            SimTime::from_micros(5),
        );
    }
}
