//! The discrete-event engine.
//!
//! A [`Sim`] owns a population of protocol instances (one per simulated
//! host), the global event queue, the NAT table, the latency/loss profile
//! and a seeded RNG. Everything is single-threaded and deterministic:
//! events are ordered by `(time, sequence-number)`, so two runs with the
//! same seed replay identically.
//!
//! Protocols implement [`Protocol`] and interact with the world only
//! through [`Ctx`], which *records* effects (sends, timers); the engine
//! applies them once the callback returns. This keeps the borrow structure
//! simple and the event order well-defined.

use crate::fault::{Fault, FaultPlan, FaultState};
use crate::id::{Endpoint, NodeId};
use crate::latency::NetProfile;
use crate::metrics::Metrics;
use crate::nat::{NatTable, NatType};
use crate::time::{SimDuration, SimTime};
use whisper_rand::rngs::StdRng;
use whisper_rand::SeedableRng;
use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, BTreeMap};

/// A protocol stack running on one simulated host.
///
/// All callbacks receive a [`Ctx`] for interacting with the network.
pub trait Protocol {
    /// Invoked once when the node is added to the simulation.
    fn on_start(&mut self, ctx: &mut Ctx<'_>);

    /// Invoked for every delivered message. `from` identifies the sending
    /// host and `from_ep` its externally observed endpoint (which is what
    /// a real socket would report, and what NAT traversal must use).
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, from_ep: Endpoint, data: &[u8]);

    /// Invoked when a timer armed with [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64);

    /// Invoked when the node comes back up after a scripted
    /// crash-and-restart fault ([`crate::fault::Fault::CrashRestart`]).
    ///
    /// The process restarted: volatile protocol state is presumed lost,
    /// and implementations should clear it here. The default does
    /// nothing, which models a protocol whose state survives restarts
    /// (or a test protocol that does not care).
    fn on_crash_restart(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Downcasting support so experiment harnesses can inspect node state.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Effects recorded by a protocol callback, applied by the engine
/// afterwards.
enum Effect {
    Send { to: Endpoint, data: Vec<u8> },
    Timer { delay: SimDuration, token: u64 },
}

/// The execution context handed to protocol callbacks.
pub struct Ctx<'a> {
    now: SimTime,
    id: NodeId,
    nat_type: NatType,
    rng: &'a mut StdRng,
    metrics: &'a mut Metrics,
    effects: Vec<Effect>,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This node's NAT type (a real node knows whether it is publicly
    /// reachable, e.g. via STUN-style probing; we expose it directly).
    pub fn nat_type(&self) -> NatType {
        self.nat_type
    }

    /// Queues a message to `to`. Delivery is subject to latency, loss and
    /// the destination's NAT filtering; there is no failure notification,
    /// exactly like UDP.
    pub fn send_to(&mut self, to: Endpoint, data: Vec<u8>) {
        self.effects.push(Effect::Send { to, data });
    }

    /// Arms a one-shot timer that fires `delay` from now with `token`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.effects.push(Effect::Timer { delay, token });
    }

    /// Deterministic randomness source.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// The shared metric sink.
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }
}

enum EventKind {
    Deliver {
        to: Endpoint,
        from: NodeId,
        from_ep: Endpoint,
        data: Vec<u8>,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
    Start {
        node: NodeId,
    },
    /// Scripted crash: the node goes down until `restart_at`.
    FaultCrash {
        node: NodeId,
        restart_at: SimTime,
    },
    /// Scripted restart of a crashed node.
    FaultRestart {
        node: NodeId,
    },
    /// Scripted NAT rebind (fresh device, same type).
    FaultRebind {
        node: NodeId,
    },
}

struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Seed for the engine RNG (drives latency, loss and protocol
    /// randomness).
    pub seed: u64,
    /// Latency/loss environment.
    pub profile: NetProfile,
    /// NAT association-rule lease time. The paper quotes Cisco's
    /// defaults: 5 minutes for UDP, 24 hours for TCP — and WHISPER's
    /// connection reuse relies on the long TCP-style leases (§II-C). The
    /// simulator defaults to 2 hours.
    pub nat_lease: SimDuration,
}

impl SimConfig {
    /// Cluster profile with the given seed.
    pub fn cluster(seed: u64) -> Self {
        SimConfig {
            seed,
            profile: NetProfile::cluster(),
            nat_lease: SimDuration::from_secs(7200),
        }
    }

    /// PlanetLab profile with the given seed.
    pub fn planetlab(seed: u64) -> Self {
        SimConfig {
            seed,
            profile: NetProfile::planetlab(),
            nat_lease: SimDuration::from_secs(7200),
        }
    }

    /// Instant, lossless network for logic-focused tests.
    pub fn ideal(seed: u64) -> Self {
        SimConfig {
            seed,
            profile: NetProfile::ideal(),
            nat_lease: SimDuration::from_secs(7200),
        }
    }
}

/// The discrete-event simulator.
pub struct Sim {
    cfg: SimConfig,
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Event>>,
    nodes: BTreeMap<NodeId, Box<dyn Protocol>>,
    nat: NatTable,
    rng: StdRng,
    metrics: Metrics,
    next_node_id: u64,
    fault: FaultState,
}

impl Sim {
    /// Creates an empty simulation.
    pub fn new(cfg: SimConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        Sim {
            cfg,
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            nodes: BTreeMap::new(),
            nat: NatTable::new(),
            rng,
            metrics: Metrics::new(),
            next_node_id: 0,
            fault: FaultState::default(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the simulation has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Live node identifiers in ascending order (deterministic).
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// Whether `id` is currently live.
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// The NAT type of a live node.
    pub fn nat_type(&self, id: NodeId) -> Option<NatType> {
        self.nat.nat_type(id)
    }

    /// The metric sink.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to the metric sink (e.g. to reset between phases).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The engine RNG (for harness-level random choices that must stay
    /// deterministic).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Adds a node behind a NAT device of type `nat_type` and schedules
    /// its `on_start` at the current time. Returns its fresh identifier.
    pub fn add_node(&mut self, protocol: Box<dyn Protocol>, nat_type: NatType) -> NodeId {
        let id = NodeId(self.next_node_id);
        self.next_node_id += 1;
        self.nodes.insert(id, protocol);
        self.nat.insert(id, nat_type);
        self.push(SimDuration::ZERO, EventKind::Start { node: id });
        id
    }

    /// Removes a node abruptly (crash semantics: no notification, pending
    /// messages to it are dropped, its NAT state disappears).
    pub fn remove_node(&mut self, id: NodeId) {
        self.nodes.remove(&id);
        self.nat.remove(id);
        self.fault.down.remove(&id);
    }

    /// Installs a [`FaultPlan`]: windowed faults (partition, burst loss,
    /// latency spike) take effect on the send path while their window is
    /// active; point-in-time faults (crash/restart, NAT rebind) are
    /// scheduled through the ordinary event queue, so their ordering
    /// relative to protocol events is deterministic. May be called more
    /// than once; plans accumulate. Instants already in the past fire
    /// immediately.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        for fault in &plan.faults {
            match *fault {
                Fault::CrashRestart { node, at, restart_at } => {
                    self.push_at(at, EventKind::FaultCrash { node, restart_at });
                    self.push_at(restart_at, EventKind::FaultRestart { node });
                }
                Fault::NatRebind { node, at } => {
                    self.push_at(at, EventKind::FaultRebind { node });
                }
                _ => {}
            }
        }
        self.fault.install(plan);
    }

    /// Whether `id` is currently crashed by a [`Fault::CrashRestart`].
    pub fn is_down(&self, id: NodeId) -> bool {
        self.fault.down.contains_key(&id)
    }

    /// Number of messages currently in flight (queued `Deliver` events).
    /// The drop-attribution identity is
    /// `sends == deliveries + Σ drop counters + in_flight`.
    pub fn in_flight_msgs(&self) -> u64 {
        self.queue
            .iter()
            .filter(|Reverse(ev)| matches!(ev.kind, EventKind::Deliver { .. }))
            .count() as u64
    }

    /// Immutable access to a node's protocol state, downcast to `T`.
    pub fn node<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.nodes.get(&id)?.as_any().downcast_ref::<T>()
    }

    /// Mutable access to a node's protocol state, downcast to `T`.
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes.get_mut(&id)?.as_any_mut().downcast_mut::<T>()
    }

    /// Invokes `f` on the node as if from a protocol callback — used by
    /// harnesses to inject application commands (e.g. "issue a DHT
    /// lookup"). Effects are applied as usual.
    pub fn with_node_ctx<T: 'static>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx<'_>),
    ) -> bool {
        let Some(nat_type) = self.nat.nat_type(id) else {
            return false;
        };
        if self.fault.down.contains_key(&id) {
            return false; // a crashed node cannot run callbacks
        }
        let Some(mut proto) = self.nodes.remove(&id) else {
            return false;
        };
        let mut ctx = Ctx {
            now: self.now,
            id,
            nat_type,
            rng: &mut self.rng,
            metrics: &mut self.metrics,
            effects: Vec::new(),
        };
        let applied = if let Some(t) = proto.as_any_mut().downcast_mut::<T>() {
            f(t, &mut ctx);
            true
        } else {
            false
        };
        let effects = std::mem::take(&mut ctx.effects);
        self.nodes.insert(id, proto);
        self.apply_effects(id, effects);
        applied
    }

    /// Runs events until the queue is exhausted or `deadline` is reached;
    /// time ends exactly at `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.at > deadline {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked");
            self.now = ev.at;
            self.dispatch(ev.kind);
        }
        self.now = deadline;
    }

    /// Runs for `d` of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        self.run_until(self.now + d);
    }

    /// Runs for `secs` seconds of simulated time.
    pub fn run_for_secs(&mut self, secs: u64) {
        self.run_for(SimDuration::from_secs(secs));
    }

    fn push(&mut self, delay: SimDuration, kind: EventKind) {
        let ev = Event { at: self.now + delay, seq: self.seq, kind };
        self.seq += 1;
        self.queue.push(Reverse(ev));
    }

    /// Pushes an event at an absolute instant (now, if already past).
    fn push_at(&mut self, at: SimTime, kind: EventKind) {
        let delay = if at > self.now { at.since(self.now) } else { SimDuration::ZERO };
        self.push(delay, kind);
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Start { node } => {
                if let Some(&up_at) = self.fault.down.get(&node) {
                    self.push_at(up_at, EventKind::Start { node });
                    return;
                }
                self.invoke(node, |proto, ctx| proto.on_start(ctx));
            }
            EventKind::Timer { node, token } => {
                // A crashed node runs nothing; its timers are deferred to
                // the restart instant (with fresh, larger sequence
                // numbers, so they fire *after* the restart callback).
                if let Some(&up_at) = self.fault.down.get(&node) {
                    self.push_at(up_at, EventKind::Timer { node, token });
                    return;
                }
                self.invoke(node, |proto, ctx| proto.on_timer(ctx, token));
            }
            EventKind::FaultCrash { node, restart_at } => {
                if !self.nodes.contains_key(&node) {
                    return; // already removed by churn
                }
                self.fault.down.insert(node, restart_at);
                // The host reboots: its NAT device forgets every binding.
                self.nat.rebind(node);
                self.metrics.count("net.fault_crash", 1);
            }
            EventKind::FaultRestart { node } => {
                if self.fault.down.remove(&node).is_some() {
                    self.metrics.count("net.fault_restart", 1);
                    self.invoke(node, |proto, ctx| proto.on_crash_restart(ctx));
                }
            }
            EventKind::FaultRebind { node } => {
                if self.nat.rebind(node) {
                    self.metrics.count("net.fault_nat_rebind", 1);
                }
            }
            EventKind::Deliver { to, from, from_ep, data } => {
                if !self.nodes.contains_key(&to.node) {
                    self.metrics.count("net.drop_dead_target", 1);
                    return;
                }
                if self.fault.down.contains_key(&to.node) {
                    self.metrics.count("net.drop_crashed", 1);
                    return;
                }
                let accepted = match self.nat.device_mut(to.node) {
                    Some(dev) => dev.inbound(to.port, from_ep, self.now),
                    None => false,
                };
                if !accepted {
                    self.metrics.count("net.nat_blocked", 1);
                    return;
                }
                self.metrics.record_down(to.node, data.len());
                self.invoke(to.node, |proto, ctx| {
                    proto.on_message(ctx, from, from_ep, &data)
                });
            }
        }
    }

    /// Runs one callback on a node (if alive) and applies its effects.
    fn invoke(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Protocol, &mut Ctx<'_>)) {
        let Some(nat_type) = self.nat.nat_type(id) else {
            return;
        };
        // Temporarily detach the node so `Ctx` can borrow the rest of the
        // simulator without aliasing.
        let Some(mut proto) = self.nodes.remove(&id) else {
            return;
        };
        let mut ctx = Ctx {
            now: self.now,
            id,
            nat_type,
            rng: &mut self.rng,
            metrics: &mut self.metrics,
            effects: Vec::new(),
        };
        f(proto.as_mut(), &mut ctx);
        let effects = std::mem::take(&mut ctx.effects);
        self.nodes.insert(id, proto);
        self.apply_effects(id, effects);
    }

    fn apply_effects(&mut self, from: NodeId, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Timer { delay, token } => {
                    self.push(delay, EventKind::Timer { node: from, token });
                }
                Effect::Send { to, data } => {
                    self.metrics.record_up(from, data.len());
                    // Loopback: skip NAT and loss, deliver with link delay.
                    if to.node == from {
                        let delay = self.cfg.profile.link.sample(&mut self.rng);
                        let from_ep = Endpoint { node: from, port: 0 };
                        self.push(delay, EventKind::Deliver { to, from, from_ep, data });
                        continue;
                    }
                    let Some(dev) = self.nat.device_mut(from) else {
                        // Sender vanished between callback and effect
                        // application (cannot normally happen).
                        self.metrics.count("net.drop_sender_gone", 1);
                        continue;
                    };
                    let src_port = dev.outbound(to, self.now, self.cfg.nat_lease);
                    let from_ep = Endpoint { node: from, port: src_port };
                    if self.fault.partition_blocks(self.now, from, to.node) {
                        self.metrics.count("net.drop_partition", 1);
                        continue;
                    }
                    if self.cfg.profile.sample_loss(&mut self.rng) {
                        self.metrics.count("net.lost", 1);
                        continue;
                    }
                    if self.fault.burst_drop(self.now, &mut self.rng) {
                        self.metrics.count("net.lost_burst", 1);
                        continue;
                    }
                    let mut delay = self.cfg.profile.sample_delay(&mut self.rng);
                    let factor = self.fault.delay_factor(self.now);
                    if factor > 1 {
                        delay = delay * factor;
                        self.metrics.count("net.delay_spiked", 1);
                    }
                    self.push(delay, EventKind::Deliver { to, from, from_ep, data });
                }
            }
        }
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nat::NatType;

    /// Test protocol: pings a target on start, echoes everything back,
    /// counts deliveries, re-arms a periodic timer.
    struct Pinger {
        target: Option<Endpoint>,
        received: Vec<(NodeId, Vec<u8>)>,
        timer_fires: u32,
        periodic: bool,
    }

    impl Pinger {
        fn new() -> Self {
            Pinger { target: None, received: Vec::new(), timer_fires: 0, periodic: false }
        }
    }

    impl Protocol for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if let Some(t) = self.target {
                ctx.send_to(t, b"ping".to_vec());
            }
            if self.periodic {
                ctx.set_timer(SimDuration::from_secs(1), 1);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, from_ep: Endpoint, data: &[u8]) {
            self.received.push((from, data.to_vec()));
            if data == b"ping" {
                ctx.send_to(from_ep, b"pong".to_vec());
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            self.timer_fires += 1;
            if self.periodic && self.timer_fires < 5 {
                ctx.set_timer(SimDuration::from_secs(1), token);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn ping_pong_between_public_nodes() {
        let mut sim = Sim::new(SimConfig::ideal(1));
        let b = sim.add_node(Box::new(Pinger::new()), NatType::Public);
        let mut a_proto = Pinger::new();
        a_proto.target = Some(Endpoint::public(b));
        let a = sim.add_node(Box::new(a_proto), NatType::Public);
        sim.run_for_secs(1);
        let a_state: &Pinger = sim.node(a).unwrap();
        assert_eq!(a_state.received.len(), 1);
        assert_eq!(a_state.received[0].1, b"pong");
        let b_state: &Pinger = sim.node(b).unwrap();
        assert_eq!(b_state.received[0].0, a);
    }

    #[test]
    fn reply_to_natted_sender_via_observed_endpoint() {
        // A is behind a port-restricted NAT; B replies to A's observed
        // endpoint and the reply passes the filter.
        let mut sim = Sim::new(SimConfig::ideal(2));
        let b = sim.add_node(Box::new(Pinger::new()), NatType::Public);
        let mut a_proto = Pinger::new();
        a_proto.target = Some(Endpoint::public(b));
        let a = sim.add_node(Box::new(a_proto), NatType::PortRestrictedCone);
        sim.run_for_secs(1);
        let a_state: &Pinger = sim.node(a).unwrap();
        assert_eq!(a_state.received.len(), 1, "pong must traverse A's NAT");
    }

    #[test]
    fn unsolicited_message_to_natted_node_blocked() {
        let mut sim = Sim::new(SimConfig::ideal(3));
        let victim = sim.add_node(Box::new(Pinger::new()), NatType::RestrictedCone);
        let mut a_proto = Pinger::new();
        // Guess an endpoint; nothing was opened, so it must be dropped.
        a_proto.target = Some(Endpoint { node: victim, port: 1 });
        sim.add_node(Box::new(a_proto), NatType::Public);
        sim.run_for_secs(1);
        let v: &Pinger = sim.node(victim).unwrap();
        assert!(v.received.is_empty());
        assert_eq!(sim.metrics().counter("net.nat_blocked"), 1);
    }

    #[test]
    fn timers_fire_and_rearm() {
        let mut sim = Sim::new(SimConfig::ideal(4));
        let mut p = Pinger::new();
        p.periodic = true;
        let id = sim.add_node(Box::new(p), NatType::Public);
        sim.run_for_secs(10);
        let state: &Pinger = sim.node(id).unwrap();
        assert_eq!(state.timer_fires, 5);
    }

    #[test]
    fn dead_node_receives_nothing() {
        let mut sim = Sim::new(SimConfig::ideal(5));
        let b = sim.add_node(Box::new(Pinger::new()), NatType::Public);
        let mut a_proto = Pinger::new();
        a_proto.target = Some(Endpoint::public(b));
        sim.add_node(Box::new(a_proto), NatType::Public);
        sim.remove_node(b);
        sim.run_for_secs(1);
        assert_eq!(sim.metrics().counter("net.drop_dead_target"), 1);
        assert!(!sim.contains(b));
    }

    #[test]
    fn bandwidth_is_accounted() {
        let mut sim = Sim::new(SimConfig::ideal(6));
        let b = sim.add_node(Box::new(Pinger::new()), NatType::Public);
        let mut a_proto = Pinger::new();
        a_proto.target = Some(Endpoint::public(b));
        let a = sim.add_node(Box::new(a_proto), NatType::Public);
        sim.run_for_secs(1);
        let ta = sim.metrics().traffic(a);
        let tb = sim.metrics().traffic(b);
        assert_eq!(ta.up_msgs, 1);
        assert_eq!(ta.down_msgs, 1);
        assert_eq!(tb.up_msgs, 1);
        assert!(ta.up_bytes > 4, "headers counted");
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> (u64, u64) {
            let mut sim = Sim::new(SimConfig::cluster(seed));
            let b = sim.add_node(Box::new(Pinger::new()), NatType::Public);
            for _ in 0..20 {
                let mut p = Pinger::new();
                p.target = Some(Endpoint::public(b));
                p.periodic = true;
                sim.add_node(Box::new(p), NatType::RestrictedCone);
            }
            sim.run_for_secs(30);
            let t = sim.metrics().traffic(b);
            (t.down_bytes, t.up_bytes)
        }
        assert_eq!(run(7), run(7));
        assert_eq!(run(8), run(8));
    }

    #[test]
    fn with_node_ctx_injects_commands() {
        let mut sim = Sim::new(SimConfig::ideal(8));
        let b = sim.add_node(Box::new(Pinger::new()), NatType::Public);
        let a = sim.add_node(Box::new(Pinger::new()), NatType::Public);
        let ok = sim.with_node_ctx::<Pinger>(a, |_p, ctx| {
            ctx.send_to(Endpoint::public(b), b"ping".to_vec());
        });
        assert!(ok);
        sim.run_for_secs(1);
        let b_state: &Pinger = sim.node(b).unwrap();
        assert_eq!(b_state.received.len(), 1);
    }

    #[test]
    fn run_until_lands_exactly_on_deadline() {
        let mut sim = Sim::new(SimConfig::ideal(9));
        sim.run_until(SimTime::from_micros(123_456));
        assert_eq!(sim.now().as_micros(), 123_456);
    }
}
