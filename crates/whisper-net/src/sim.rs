//! The discrete-event engine.
//!
//! A [`Sim`] owns a population of protocol instances (one per simulated
//! host) partitioned across one or more **shards**. Each shard owns an
//! event queue (a calendar queue or a binary heap, selectable via
//! [`SimConfig::with_scheduler`]; see [`crate::sched`]) and the arena of
//! per-node state, split SoA-style into dense hot flag/traffic arrays
//! and cold slots (protocol box, NAT device, RNG streams). With
//! `shards = 1` (the default) the engine is the classic single-queue
//! event loop; with more shards it advances in conservative lookahead
//! windows bounded by the minimum cross-shard link latency, exchanging
//! cross-shard sends as batched per-destination vectors at window
//! barriers — sequentially or on a persistent worker-thread pool.
//!
//! # The determinism contract
//!
//! Two runs with the same seed produce **byte-identical traces and
//! metrics for any shard count and any thread policy**. This holds
//! because nothing trace-visible depends on partitioning:
//!
//! * Events are ordered by a canonical key `(time, source, sequence)`
//!   where `source` is the originating node (or the control plane) and
//!   `sequence` a per-source counter — not a global insertion counter.
//! * Every node draws from its own RNG streams derived from
//!   `(seed, node id)` via [`StdRng::for_stream_lane`]: one lane for
//!   protocol randomness, one for link randomness (latency, loss,
//!   burst-loss chains). Engine draws happen at send time in the
//!   sender's shard.
//! * Cross-shard messages are exchanged at window barriers and can only
//!   land in future windows (the window length never exceeds the
//!   profile's [`minimum delay`](crate::latency::NetProfile::min_delay)),
//!   so each shard processes an identical event sequence regardless of
//!   when its neighbours run.
//! * Message bytes travel as reference-counted [`Payload`] buffers
//!   recycled through shard-local pools ([`crate::payload`]); pooling is
//!   invisible to the trace — only the exempt `net.pool_*` statistics
//!   reflect it (DESIGN.md §13).
//!
//! See `DESIGN.md` §12 for the full algorithm and the rules code must
//! follow to preserve the contract (no wall clock, no `HashMap`
//! iteration order in trace-visible paths).
//!
//! Protocols implement [`Protocol`] and interact with the world only
//! through [`Ctx`], which *records* effects (sends, timers); the engine
//! applies them once the callback returns. This keeps the borrow
//! structure simple and the event order well-defined.

use crate::fault::{Fault, FaultPlan, FaultState};
use crate::id::{Endpoint, NodeId};
use crate::latency::NetProfile;
use crate::metrics::{Metrics, Traffic, HEADER_OVERHEAD};
use crate::nat::{NatDevice, NatType};
use crate::payload::{Payload, PayloadPool};
use crate::sched::{EventKey, EventQueue, Keyed, Scheduler};
use crate::time::{SimDuration, SimTime};
use crate::wire::{WireEncode, WireWriter};
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Barrier, Mutex};
use whisper_rand::rngs::StdRng;

/// RNG stream lane for protocol randomness ([`Ctx::rng`]).
const LANE_PROTO: u64 = 0;
/// RNG stream lane for link randomness (delay, loss, burst chains).
const LANE_LINK: u64 = 1;
/// RNG stream lane for the harness generator ([`Sim::rng`]).
const LANE_HARNESS: u64 = 2;

/// Event-source class for control-plane events (node starts scheduled by
/// the harness, scripted fault instants). Sorts before every node source
/// at equal times, so crash/restart handling precedes deferred protocol
/// events at the same instant.
const CONTROL_SRC: u64 = 0;

/// A protocol stack running on one simulated host.
///
/// All callbacks receive a [`Ctx`] for interacting with the network.
///
/// # Reentrancy and threading
///
/// Callbacks are never reentered: the engine runs at most one callback
/// per node at a time, and effects recorded through [`Ctx`] are applied
/// only after the callback returns — a message a callback sends can
/// never be delivered (even to `self`) before that callback finishes.
/// Implementations must be [`Send`] because a sharded simulation may run
/// a node's callbacks on a worker thread; they never run on two threads
/// concurrently, and a given node's callbacks always execute in
/// deterministic event order.
pub trait Protocol: Send {
    /// Invoked once when the node is added to the simulation.
    fn on_start(&mut self, ctx: &mut Ctx<'_>);

    /// Invoked for every delivered message. `from` identifies the sending
    /// host and `from_ep` its externally observed endpoint (which is what
    /// a real socket would report, and what NAT traversal must use).
    ///
    /// `data` derefs to `&[u8]`; implementations that want to hold on to
    /// the bytes past the callback may [`Payload::clone`] them (a
    /// reference-count bump), which also keeps the buffer out of the
    /// engine's recycling pool for as long as the clone lives.
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, from_ep: Endpoint, data: &Payload);

    /// Invoked when a timer armed with [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64);

    /// Invoked when the node comes back up after a scripted
    /// crash-and-restart fault ([`crate::fault::Fault::CrashRestart`]).
    ///
    /// The process restarted: volatile protocol state is presumed lost,
    /// and implementations should clear it here. Timers that would have
    /// fired while the node was down are delivered *after* this callback
    /// (at the restart instant, in their original relative order). The
    /// default does nothing, which models a protocol whose state survives
    /// restarts (or a test protocol that does not care).
    fn on_crash_restart(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Downcasting support so experiment harnesses can inspect node state.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Effects recorded by a protocol callback, applied by the engine
/// afterwards.
enum Effect {
    Send { to: Endpoint, data: Payload },
    Timer { delay: SimDuration, token: u64 },
}

/// Deterministic allocation accounting for one callback, flushed into
/// the metric counters (`net.allocs` / `net.alloc_bytes` /
/// `net.payload_cloned` / `net.payload_pooled`) after the callback
/// returns. Classification depends only on payload provenance — never on
/// pool contents — so these counters are byte-identical for any shard
/// count (unlike the `net.pool_*` family, which is shard-local by
/// nature).
#[derive(Default)]
struct AllocTally {
    allocs: u64,
    alloc_bytes: u64,
    cloned: u64,
    pooled: u64,
}

impl AllocTally {
    fn flush(self, metrics: &mut Metrics) {
        if self.allocs > 0 {
            metrics.count("net.allocs", self.allocs);
            metrics.count("net.alloc_bytes", self.alloc_bytes);
        }
        if self.cloned > 0 {
            metrics.count("net.payload_cloned", self.cloned);
        }
        if self.pooled > 0 {
            metrics.count("net.payload_pooled", self.pooled);
        }
    }
}

/// Per-shard hot-path profiler: wall-clock nanoseconds attributed to
/// engine buckets, flushed into the `prof.*` counters at metric sync
/// points. Like the `net.pool_*` family (and the `*_wall_us` samples),
/// `prof.*` counters are host-side measurements and therefore **exempt
/// from the determinism-trace comparison** — wall time legitimately
/// varies with shard count, thread policy and machine load. Disabled
/// (the default) the profiler costs one branch per event; nothing
/// trace-visible ever depends on it either way.
///
/// Bucket structure (see DESIGN.md §16):
///
/// * `sched_ns` — event-queue peek/pop time.
/// * `dispatch_ns` — everything from pop to dispatch return; contains
///   `callback_ns`, and the difference is engine bookkeeping (NAT
///   filtering, traffic accounting, effect application).
/// * `callback_ns` — protocol callback time; contains the `encode_ns` /
///   `decode_ns` / `crypto_model_ns` sub-buckets reported by [`Ctx`].
#[derive(Default)]
struct ProfTally {
    enabled: bool,
    sched_ns: u64,
    dispatch_ns: u64,
    callback_ns: u64,
    encode_ns: u64,
    decode_ns: u64,
    crypto_model_ns: u64,
    events: u64,
}

impl ProfTally {
    fn new(enabled: bool) -> Self {
        ProfTally { enabled, ..ProfTally::default() }
    }

    /// Drains the accumulated buckets into the exempt `prof.*` counters,
    /// keeping the `enabled` flag.
    fn flush(&mut self, metrics: &mut Metrics) {
        if self.events == 0 && self.sched_ns == 0 {
            return;
        }
        let engine_ns = self.dispatch_ns.saturating_sub(self.callback_ns);
        for (name, v) in [
            ("prof.sched_ns", self.sched_ns),
            ("prof.engine_ns", engine_ns),
            ("prof.callback_ns", self.callback_ns),
            ("prof.encode_ns", self.encode_ns),
            ("prof.decode_ns", self.decode_ns),
            ("prof.crypto_model_ns", self.crypto_model_ns),
            ("prof.events", self.events),
        ] {
            if v > 0 {
                metrics.count(name, v);
            }
        }
        *self = ProfTally::new(self.enabled);
    }
}

/// Per-callback profiler scratch carried by [`Ctx`] (mirroring
/// [`AllocTally`]), flushed into the shard's [`ProfTally`] after the
/// callback returns.
#[derive(Default)]
struct ProfCtx {
    enabled: bool,
    encode_ns: u64,
    decode_ns: u64,
    crypto_model_ns: u64,
}

impl ProfCtx {
    fn new(enabled: bool) -> Self {
        ProfCtx { enabled, ..ProfCtx::default() }
    }

    fn flush(self, tally: &mut ProfTally) {
        tally.encode_ns += self.encode_ns;
        tally.decode_ns += self.decode_ns;
        tally.crypto_model_ns += self.crypto_model_ns;
    }
}

/// The execution context handed to protocol callbacks.
pub struct Ctx<'a> {
    now: SimTime,
    id: NodeId,
    nat_type: NatType,
    rng: &'a mut StdRng,
    metrics: &'a mut Metrics,
    pool: &'a mut PayloadPool,
    tally: AllocTally,
    prof: ProfCtx,
    effects: Vec<Effect>,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This node's NAT type (a real node knows whether it is publicly
    /// reachable, e.g. via STUN-style probing; we expose it directly).
    pub fn nat_type(&self) -> NatType {
        self.nat_type
    }

    /// Queues a message to `to`. Delivery is subject to latency, loss and
    /// the destination's NAT filtering; there is no failure notification,
    /// exactly like UDP.
    ///
    /// Accepts anything convertible into a [`Payload`]: a `Vec<u8>`
    /// (counted as a fresh allocation at the engine boundary) or a
    /// `Payload` clone (fan-out: N sends of the same bytes share one
    /// buffer). Hot paths that build a message just to send it should
    /// prefer [`Ctx::send_wire`], which encodes into a pooled buffer.
    pub fn send_to(&mut self, to: Endpoint, data: impl Into<Payload>) {
        let data = data.into();
        if data.is_pooled() {
            self.tally.pooled += 1;
        } else if data.is_shared() {
            self.tally.cloned += 1;
        } else {
            self.tally.allocs += 1;
            self.tally.alloc_bytes += data.len() as u64;
        }
        self.effects.push(Effect::Send { to, data });
    }

    /// Encodes `msg` into a buffer drawn from the shard's payload pool
    /// and queues it to `to` — the allocation-free way to send a wire
    /// message (steady state recycles the buffer of a delivered packet).
    pub fn send_wire<M: WireEncode>(&mut self, to: Endpoint, msg: &M) {
        let payload = self.encode_payload(msg);
        self.send_to(to, payload);
    }

    /// Encodes `msg` into a pooled buffer without sending it. Use this
    /// for fan-out: encode once, then [`Ctx::send_to`] a clone per
    /// destination — N sends, one buffer.
    ///
    /// The buffer is pre-sized from [`WireEncode::encoded_len`], so the
    /// pool serves the exact size class and the writer never reallocates
    /// mid-encode.
    pub fn encode_payload<M: WireEncode>(&mut self, msg: &M) -> Payload {
        let t0 = self.prof.enabled.then(std::time::Instant::now);
        let len = msg.encoded_len();
        let mut w = WireWriter::from_vec(self.pool.take(len));
        msg.encode(&mut w);
        debug_assert_eq!(w.len(), len, "encoded_len() disagrees with encode()");
        let payload = Payload::recycled(w.into_bytes(), self.pool.enabled());
        if let Some(t0) = t0 {
            self.prof.encode_ns += t0.elapsed().as_nanos() as u64;
        }
        payload
    }

    /// Arms a one-shot timer that fires `delay` from now with `token`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.effects.push(Effect::Timer { delay, token });
    }

    /// Deterministic randomness source: this node's private protocol RNG
    /// stream, a pure function of `(seed, node id)`. Drawing more or
    /// fewer values here never perturbs any other node's randomness or
    /// the network schedule.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// The metric sink (shard-local during a run; merged deterministically
    /// into the global sink at run boundaries).
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    /// Whether the hot-path profiler is on
    /// ([`SimConfig::with_profiling`]). Protocols can use this to skip
    /// assembling expensive diagnostic values when nobody is measuring.
    pub fn prof_enabled(&self) -> bool {
        self.prof.enabled
    }

    /// Runs `f` and attributes its wall time to the protocol-decode
    /// profiler bucket (`prof.decode_ns`). A no-op wrapper when the
    /// profiler is off. The closure's *result* must not feed back into
    /// protocol behaviour differently depending on profiling — only
    /// timing is recorded, so this is trivially true for pure decoding.
    pub fn prof_decode<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let t0 = self.prof.enabled.then(std::time::Instant::now);
        let r = f();
        if let Some(t0) = t0 {
            self.prof.decode_ns += t0.elapsed().as_nanos() as u64;
        }
        r
    }

    /// Attributes `ns` wall nanoseconds to the crypto cost-model bucket
    /// (`prof.crypto_model_ns`) — the time spent *computing* deterministic
    /// crypto charges, as opposed to the simulated time they add.
    pub fn prof_crypto_model_ns(&mut self, ns: u64) {
        if self.prof.enabled {
            self.prof.crypto_model_ns += ns;
        }
    }
}

enum EventKind {
    Deliver {
        to: Endpoint,
        from: NodeId,
        from_ep: Endpoint,
        data: Payload,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
    Start {
        node: NodeId,
    },
    /// Scripted crash: the node goes down until `restart_at`.
    FaultCrash {
        node: NodeId,
        restart_at: SimTime,
    },
    /// Scripted restart of a crashed node.
    FaultRestart {
        node: NodeId,
    },
    /// Scripted NAT rebind (fresh device, same type).
    FaultRebind {
        node: NodeId,
    },
}

/// An event with its canonical, shard-invariant ordering key
/// `(at, src, seq)`. `src` is [`CONTROL_SRC`] for control-plane events
/// and `node.0 + 1` for node-originated ones; `seq` is a per-source
/// monotone counter, so keys are globally unique and compare identically
/// for any partitioning of nodes over shards.
struct Event {
    at: SimTime,
    src: u64,
    seq: u64,
    kind: EventKind,
}

impl Keyed for Event {
    fn key(&self) -> EventKey {
        (self.at.as_micros(), self.src, self.seq)
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Seed for all engine randomness. Every per-node stream and the
    /// harness RNG derive from it.
    pub seed: u64,
    /// Latency/loss environment.
    pub profile: NetProfile,
    /// NAT association-rule lease time. The paper quotes Cisco's
    /// defaults: 5 minutes for UDP, 24 hours for TCP — and WHISPER's
    /// connection reuse relies on the long TCP-style leases (§II-C). The
    /// simulator defaults to 2 hours.
    pub nat_lease: SimDuration,
    /// Number of engine shards (≥ 1). Nodes are partitioned by
    /// `NodeId % shards`; traces are byte-identical for any value.
    /// Sharding requires `profile.min_delay() > 0`.
    pub shards: usize,
    /// Thread policy for `shards > 1`: `None` (default) uses worker
    /// threads only when the host has more than one CPU, `Some(true)`
    /// forces threads, `Some(false)` forces the sequential interleave.
    /// The choice never affects traces — it is pure wall-clock policy.
    pub threads: Option<bool>,
    /// Whether shards recycle payload buffers through their
    /// [`PayloadPool`] (default `true`). Purely a performance knob: the
    /// trace is byte-identical with pooling on or off — only the exempt
    /// `net.pool_*` statistics and the allocation-accounting counters
    /// (`net.alloc*`, `net.payload_pooled`) reflect the setting.
    pub pooling: bool,
    /// Per-shard event-queue implementation (default
    /// [`Scheduler::Wheel`], the hierarchical calendar queue). Both
    /// schedulers pop in canonical key order, so the choice is pure
    /// wall-clock policy — traces are byte-identical either way
    /// (DESIGN.md §14).
    pub scheduler: Scheduler,
    /// Expected final node count, used to pre-reserve per-shard arena,
    /// queue-bucket and exchange capacity at build time (0 = no
    /// pre-reservation). Purely a performance knob.
    pub expected_nodes: usize,
    /// Whether the hot-path profiler is on (default `false`): wall-clock
    /// time per event is attributed to scheduler / engine / callback /
    /// encode / decode / crypto-model buckets and flushed into the
    /// `prof.*` counters, which — like `net.pool_*` — are exempt from
    /// the determinism-trace comparison. Traces are byte-identical with
    /// profiling on or off.
    pub profiling: bool,
}

impl SimConfig {
    /// Cluster profile with the given seed.
    pub fn cluster(seed: u64) -> Self {
        SimConfig {
            seed,
            profile: NetProfile::cluster(),
            nat_lease: SimDuration::from_secs(7200),
            shards: 1,
            threads: None,
            pooling: true,
            scheduler: Scheduler::Wheel,
            expected_nodes: 0,
            profiling: false,
        }
    }

    /// PlanetLab profile with the given seed.
    pub fn planetlab(seed: u64) -> Self {
        SimConfig {
            seed,
            profile: NetProfile::planetlab(),
            nat_lease: SimDuration::from_secs(7200),
            shards: 1,
            threads: None,
            pooling: true,
            scheduler: Scheduler::Wheel,
            expected_nodes: 0,
            profiling: false,
        }
    }

    /// Instant, lossless network for logic-focused tests.
    pub fn ideal(seed: u64) -> Self {
        SimConfig {
            seed,
            profile: NetProfile::ideal(),
            nat_lease: SimDuration::from_secs(7200),
            shards: 1,
            threads: None,
            pooling: true,
            scheduler: Scheduler::Wheel,
            expected_nodes: 0,
            profiling: false,
        }
    }

    /// Returns the config with `shards` engine shards.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "a simulation needs at least one shard");
        self.shards = shards;
        self
    }

    /// Returns the config with an explicit thread policy (see
    /// [`SimConfig::threads`]).
    pub fn with_threads(mut self, threads: bool) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Returns the config with payload-buffer pooling on or off (see
    /// [`SimConfig::pooling`]).
    pub fn with_pooling(mut self, pooling: bool) -> Self {
        self.pooling = pooling;
        self
    }

    /// Returns the config with the given event-queue scheduler (see
    /// [`SimConfig::scheduler`]). Traces are byte-identical for either
    /// choice; this is the A/B knob for the `--sched` bench flag.
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Returns the config with an expected node count for capacity
    /// pre-reservation (see [`SimConfig::expected_nodes`]).
    pub fn with_expected_nodes(mut self, nodes: usize) -> Self {
        self.expected_nodes = nodes;
        self
    }

    /// Returns the config with the hot-path profiler on or off (see
    /// [`SimConfig::profiling`]).
    pub fn with_profiling(mut self, profiling: bool) -> Self {
        self.profiling = profiling;
        self
    }
}

/// Hot per-node state, flattened into its shard's arena.
struct Slot {
    id: NodeId,
    /// `None` once the node has been removed (ids are never reused, so
    /// the slot itself stays to keep the arena dense).
    proto: Option<Box<dyn Protocol>>,
    nat: NatDevice,
    /// Protocol randomness ([`Ctx::rng`]); lane [`LANE_PROTO`].
    proto_rng: StdRng,
    /// Link randomness (delay/loss/burst draws at send time); lane
    /// [`LANE_LINK`].
    link_rng: StdRng,
    /// Next sequence number for events this node originates.
    seq: u64,
    /// `Some(restart_at)` while crashed by a fault.
    down_until: Option<SimTime>,
    /// Per-fault Gilbert–Elliott chain state for this node's uplink
    /// (indexed like the installed fault list, grown lazily).
    ge_bad: Vec<bool>,
}

/// Read-only engine environment shared by all shards during a window.
struct EngineEnv<'a> {
    cfg: &'a SimConfig,
    fault: &'a FaultState,
}

/// Hot-flag bit: the slot holds a live (non-removed) protocol.
const HOT_ALIVE: u8 = 1;
/// Hot-flag bit: the node is crashed by a fault (`down_until` is set).
const HOT_DOWN: u8 = 2;
/// Hot-flag bit: the node's NAT type is `Public`, so inbound filtering
/// always passes and the dispatch loop can skip the NAT device entirely.
const HOT_PUBLIC: u8 = 4;

/// One shard: an event queue plus the arena of nodes it owns.
///
/// Per-node state is split structure-of-arrays style (DESIGN.md §14):
/// the dispatch loop's pre-delivery checks read only the dense `hot`
/// flag bytes and `traffic` counters, while the cold [`Slot`] (protocol
/// box, NAT device, RNG streams) is touched only once a callback
/// actually runs.
struct Shard {
    index: usize,
    nshards: u64,
    now: SimTime,
    queue: EventQueue<Event>,
    slots: Vec<Slot>,
    /// Dense per-slot flag bytes ([`HOT_ALIVE`] | [`HOT_DOWN`] |
    /// [`HOT_PUBLIC`]), parallel to `slots`. Invariants: `HOT_DOWN` ⇔
    /// `slot.down_until.is_some()`, `HOT_ALIVE` ⇔ `slot.proto.is_some()`.
    hot: Vec<u8>,
    /// Dense per-slot traffic deltas, parallel to `slots`; folded into
    /// the master sink at sync points via `traffic_dirty`.
    traffic: Vec<Traffic>,
    /// Positions with a nonzero `traffic` delta since the last sync.
    traffic_dirty: Vec<u32>,
    /// Delta metric sink, drained into the master sink at run boundaries.
    metrics: Metrics,
    /// Shard-local payload buffer pool; delivered buffers are recycled
    /// here and handed back out by [`Ctx::send_wire`].
    pool: PayloadPool,
    /// Hot-path profiler buckets, drained into the exempt `prof.*`
    /// counters at metric sync points.
    prof: ProfTally,
    /// Per-destination-shard outboxes for cross-shard sends, swapped
    /// wholesale at window barriers (entry `index` is unused).
    outboxes: Vec<Vec<Event>>,
    /// Queued `Deliver` events (maintained incrementally; O(1) reads).
    in_flight: u64,
    /// Live (non-removed) nodes in this shard.
    live: usize,
}

impl Shard {
    fn new(index: usize, cfg: &SimConfig) -> Self {
        let nshards = cfg.shards as u64;
        let mut queue = EventQueue::new(cfg.scheduler);
        let mut slots = Vec::new();
        let mut hot = Vec::new();
        let mut traffic = Vec::new();
        if cfg.expected_nodes > 0 {
            let per_shard = cfg.expected_nodes / cfg.shards + 1;
            // Start events + a steady-state in-flight share per node.
            queue.reserve(per_shard * 2);
            slots.reserve(per_shard);
            hot.reserve(per_shard);
            traffic.reserve(per_shard);
        }
        Shard {
            index,
            nshards,
            now: SimTime::ZERO,
            queue,
            slots,
            hot,
            traffic,
            traffic_dirty: Vec::new(),
            metrics: Metrics::new(),
            pool: PayloadPool::new(cfg.pooling),
            prof: ProfTally::new(cfg.profiling),
            outboxes: (0..cfg.shards).map(|_| Vec::new()).collect(),
            in_flight: 0,
            live: 0,
        }
    }

    /// Credits `bytes` of payload to slot `pos` in the dense traffic
    /// array (`up = true` for the uplink direction), marking the slot
    /// dirty on first touch since the last sync.
    #[inline]
    fn record_traffic(
        traffic: &mut [Traffic],
        dirty: &mut Vec<u32>,
        pos: usize,
        up: bool,
        bytes: usize,
    ) {
        let t = &mut traffic[pos];
        if t.up_msgs | t.down_msgs == 0 {
            dirty.push(pos as u32);
        }
        let total = (bytes + HEADER_OVERHEAD) as u64;
        if up {
            t.up_bytes += total;
            t.up_msgs += 1;
        } else {
            t.down_bytes += total;
            t.down_msgs += 1;
        }
    }

    /// Arena position of `id`, if this shard owns such a slot.
    fn slot_pos(&self, id: NodeId) -> Option<usize> {
        let pos = (id.0 / self.nshards) as usize;
        (id.0 % self.nshards == self.index as u64 && pos < self.slots.len()).then_some(pos)
    }

    /// Time of the earliest queued event in µs (`u64::MAX` if empty).
    /// `&mut` because peeking may advance the calendar-queue cursor.
    fn head_us(&mut self) -> u64 {
        self.queue.peek_key().map(|k| k.0).unwrap_or(u64::MAX)
    }

    /// Processes every queued event with `at < horizon_us`. Events for
    /// other shards are appended to the per-destination `outboxes`.
    fn run_window(&mut self, horizon_us: u64, env: &EngineEnv<'_>) {
        let profiling = self.prof.enabled;
        loop {
            let t_sched = profiling.then(std::time::Instant::now);
            let Some(key) = self.queue.peek_key() else { break };
            if key.0 >= horizon_us {
                if let Some(t0) = t_sched {
                    self.prof.sched_ns += t0.elapsed().as_nanos() as u64;
                }
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            if let Some(t0) = t_sched {
                self.prof.sched_ns += t0.elapsed().as_nanos() as u64;
            }
            if matches!(ev.kind, EventKind::Deliver { .. }) {
                self.in_flight -= 1;
            }
            self.now = ev.at;
            self.metrics.set_tag(Some(key));
            let t_disp = profiling.then(std::time::Instant::now);
            self.dispatch(ev, env);
            if let Some(t0) = t_disp {
                self.prof.dispatch_ns += t0.elapsed().as_nanos() as u64;
                self.prof.events += 1;
            }
        }
        self.metrics.set_tag(None);
    }

    fn dispatch(&mut self, ev: Event, env: &EngineEnv<'_>) {
        match ev.kind {
            EventKind::Start { node } => {
                let Some(pos) = self.slot_pos(node) else { return };
                let hot = self.hot[pos];
                if hot & HOT_ALIVE == 0 {
                    return; // removed before it started
                }
                if hot & HOT_DOWN != 0 {
                    // Defer to the restart instant, reusing the original
                    // key so the relative order of deferred events is
                    // preserved (the control-class restart still sorts
                    // first).
                    let up_at = self.slots[pos].down_until.expect("HOT_DOWN set");
                    self.queue.push(Event {
                        at: up_at.max(self.now),
                        src: ev.src,
                        seq: ev.seq,
                        kind: EventKind::Start { node },
                    });
                    return;
                }
                self.invoke(pos, env, |proto, ctx| proto.on_start(ctx));
            }
            EventKind::Timer { node, token } => {
                let Some(pos) = self.slot_pos(node) else { return };
                let hot = self.hot[pos];
                if hot & HOT_ALIVE == 0 {
                    return;
                }
                // A crashed node runs nothing; its timers are deferred to
                // the restart instant and fire *after* the restart
                // callback (control events sort first at equal times).
                if hot & HOT_DOWN != 0 {
                    let up_at = self.slots[pos].down_until.expect("HOT_DOWN set");
                    self.queue.push(Event {
                        at: up_at.max(self.now),
                        src: ev.src,
                        seq: ev.seq,
                        kind: EventKind::Timer { node, token },
                    });
                    return;
                }
                self.invoke(pos, env, |proto, ctx| proto.on_timer(ctx, token));
            }
            EventKind::FaultCrash { node, restart_at } => {
                let Some(pos) = self.slot_pos(node) else { return };
                let slot = &mut self.slots[pos];
                if slot.proto.is_none() {
                    return; // already removed by churn
                }
                slot.down_until = Some(restart_at);
                self.hot[pos] |= HOT_DOWN;
                // The host reboots: its NAT device forgets every binding.
                slot.nat = NatDevice::new(slot.nat.nat_type());
                self.metrics.count("net.fault_crash", 1);
            }
            EventKind::FaultRestart { node } => {
                let Some(pos) = self.slot_pos(node) else { return };
                if self.slots[pos].down_until.take().is_some() {
                    self.hot[pos] &= !HOT_DOWN;
                    self.metrics.count("net.fault_restart", 1);
                    self.invoke(pos, env, |proto, ctx| proto.on_crash_restart(ctx));
                }
            }
            EventKind::FaultRebind { node } => {
                let Some(pos) = self.slot_pos(node) else { return };
                let slot = &mut self.slots[pos];
                if slot.proto.is_some() {
                    slot.nat = NatDevice::new(slot.nat.nat_type());
                    self.metrics.count("net.fault_nat_rebind", 1);
                }
            }
            EventKind::Deliver { to, from, from_ep, data } => {
                let Some(pos) = self.slot_pos(to.node) else {
                    self.metrics.count("net.drop_dead_target", 1);
                    return;
                };
                let hot = self.hot[pos];
                if hot & HOT_ALIVE == 0 {
                    self.metrics.count("net.drop_dead_target", 1);
                    return;
                }
                if hot & HOT_DOWN != 0 {
                    self.metrics.count("net.drop_crashed", 1);
                    return;
                }
                // Public nodes accept everything: skip the NAT device
                // (its `inbound` is unconditionally true and draws no
                // state), so the happy path stays on the hot arrays.
                if hot & HOT_PUBLIC == 0
                    && !self.slots[pos].nat.inbound(to.port, from_ep, self.now)
                {
                    self.metrics.count("net.nat_blocked", 1);
                    return;
                }
                Self::record_traffic(
                    &mut self.traffic,
                    &mut self.traffic_dirty,
                    pos,
                    false,
                    data.len(),
                );
                self.invoke(pos, env, |proto, ctx| {
                    proto.on_message(ctx, from, from_ep, &data)
                });
                // The engine's reference is the last one unless the
                // protocol cloned the payload; recycle the buffer for a
                // future send. Shared buffers are left alone, so reuse is
                // never observable (DESIGN.md §13).
                self.pool.recycle(data);
            }
        }
    }

    /// Runs one callback on the slot (if alive) and applies its effects.
    fn invoke(
        &mut self,
        pos: usize,
        env: &EngineEnv<'_>,
        f: impl FnOnce(&mut dyn Protocol, &mut Ctx<'_>),
    ) {
        let now = self.now;
        let effects = {
            let Shard { slots, metrics, pool, prof, .. } = self;
            let slot = &mut slots[pos];
            let Some(mut proto) = slot.proto.take() else { return };
            let mut ctx = Ctx {
                now,
                id: slot.id,
                nat_type: slot.nat.nat_type(),
                rng: &mut slot.proto_rng,
                metrics,
                pool,
                tally: AllocTally::default(),
                prof: ProfCtx::new(prof.enabled),
                effects: Vec::new(),
            };
            let t_cb = prof.enabled.then(std::time::Instant::now);
            f(proto.as_mut(), &mut ctx);
            if let Some(t0) = t_cb {
                prof.callback_ns += t0.elapsed().as_nanos() as u64;
            }
            let effects = std::mem::take(&mut ctx.effects);
            std::mem::take(&mut ctx.tally).flush(ctx.metrics);
            std::mem::take(&mut ctx.prof).flush(prof);
            slot.proto = Some(proto);
            effects
        };
        self.apply_effects(pos, effects, env);
    }

    fn apply_effects(&mut self, pos: usize, effects: Vec<Effect>, env: &EngineEnv<'_>) {
        let nshards = self.nshards;
        let index = self.index as u64;
        let now = self.now;
        let Shard { slots, metrics, queue, in_flight, traffic, traffic_dirty, outboxes, .. } =
            self;
        let slot = &mut slots[pos];
        let from = slot.id;
        for effect in effects {
            match effect {
                Effect::Timer { delay, token } => {
                    let ev = Event {
                        at: now + delay,
                        src: from.0 + 1,
                        seq: slot.seq,
                        kind: EventKind::Timer { node: from, token },
                    };
                    slot.seq += 1;
                    queue.push(ev);
                }
                Effect::Send { to, data } => {
                    Self::record_traffic(traffic, traffic_dirty, pos, true, data.len());
                    // Loopback: skip NAT and loss, deliver with link delay.
                    if to.node == from {
                        let delay = env.cfg.profile.link.sample(&mut slot.link_rng);
                        let from_ep = Endpoint { node: from, port: 0 };
                        let ev = Event {
                            at: now + delay,
                            src: from.0 + 1,
                            seq: slot.seq,
                            kind: EventKind::Deliver { to, from, from_ep, data },
                        };
                        slot.seq += 1;
                        *in_flight += 1;
                        queue.push(ev);
                        continue;
                    }
                    let src_port = slot.nat.outbound(to, now, env.cfg.nat_lease);
                    let from_ep = Endpoint { node: from, port: src_port };
                    if env.fault.partition_blocks(now, from, to.node) {
                        metrics.count("net.drop_partition", 1);
                        continue;
                    }
                    if env.cfg.profile.sample_loss(&mut slot.link_rng) {
                        metrics.count("net.lost", 1);
                        continue;
                    }
                    if env.fault.burst_drop(now, &mut slot.ge_bad, &mut slot.link_rng) {
                        metrics.count("net.lost_burst", 1);
                        continue;
                    }
                    let mut delay = env.cfg.profile.sample_delay(&mut slot.link_rng);
                    let factor = env.fault.delay_factor(now);
                    if factor > 1 {
                        delay = delay * factor;
                        metrics.count("net.delay_spiked", 1);
                    }
                    let ev = Event {
                        at: now + delay,
                        src: from.0 + 1,
                        seq: slot.seq,
                        kind: EventKind::Deliver { to, from, from_ep, data },
                    };
                    slot.seq += 1;
                    let dest = (to.node.0 % nshards) as usize;
                    if dest == index as usize {
                        *in_flight += 1;
                        queue.push(ev);
                    } else {
                        outboxes[dest].push(ev);
                    }
                }
            }
        }
    }

    /// Absorbs one batch of cross-shard deliveries into the local queue,
    /// returning the drained (capacity-preserving) vector to the caller.
    fn absorb(&mut self, batch: &mut Vec<Event>) {
        for ev in batch.drain(..) {
            debug_assert!(
                matches!(ev.kind, EventKind::Deliver { .. }),
                "only deliveries cross shards"
            );
            self.in_flight += 1;
            self.queue.push(ev);
        }
    }
}

/// Sequentially exchanges every shard's outboxes: each nonempty
/// per-destination batch is drained into its destination's queue in
/// place, so the steady state moves events without a single allocation
/// (the batch vectors keep their capacity forever).
fn exchange_sequential(shards: &mut [Shard]) {
    for src in 0..shards.len() {
        for dst in 0..shards.len() {
            if src == dst || shards[src].outboxes[dst].is_empty() {
                continue;
            }
            let mut batch = std::mem::take(&mut shards[src].outboxes[dst]);
            shards[dst].absorb(&mut batch);
            shards[src].outboxes[dst] = batch;
        }
    }
}

/// Sentinel horizon value telling workers the run is over.
const STOP: u64 = u64::MAX;

/// Read-only run environment shipped to pooled workers (the engine's
/// borrowed [`EngineEnv`], made `'static` by cloning).
struct RunEnv {
    cfg: SimConfig,
    fault: FaultState,
}

/// Shared coordination state for one threaded run: the window barrier,
/// the published horizon, per-shard local minima, per-destination inbox
/// batch lists and the spare-vector pool for batch recycling.
struct RunSync {
    barrier: Barrier,
    horizon: AtomicU64,
    next_at: Vec<AtomicU64>,
    /// Per-destination lists of cross-shard batches (one lock per
    /// (src, dst) pair per window instead of one per event).
    inboxes: Vec<Mutex<Vec<Vec<Event>>>>,
    /// Drained batch vectors waiting for reuse; receivers return
    /// capacity here, senders draw replacements from it.
    spares: Mutex<Vec<Vec<Event>>>,
    /// Fresh batch vectors created because `spares` ran dry (steady
    /// state: zero).
    fresh: AtomicU64,
}

/// One threaded run's work order: the worker's shard plus the shared
/// environment and coordination state.
struct Job {
    shard: Shard,
    env: Arc<RunEnv>,
    sync: Arc<RunSync>,
    index: usize,
}

/// A persistent engine worker: jobs go in, shards come back. The thread
/// outlives individual `run_until` calls (and their windows), so a long
/// simulation pays thread spawn cost once instead of per run.
struct PoolWorker {
    job_tx: Option<Sender<Job>>,
    shard_rx: Receiver<Shard>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// The persistent worker pool for threaded sharded runs.
struct WorkerPool {
    workers: Vec<PoolWorker>,
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for w in &mut self.workers {
            w.job_tx.take(); // closing the channel ends the worker loop
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// Body of a pooled engine worker: run every window of a job's shard
/// (identical event-processing protocol to the sequential loop), then
/// hand the shard back and wait for the next job.
fn worker_loop(job_rx: Receiver<Job>, shard_tx: Sender<Shard>) {
    while let Ok(job) = job_rx.recv() {
        let Job { mut shard, env, sync, index } = job;
        let n = sync.next_at.len();
        {
            let eenv = EngineEnv { cfg: &env.cfg, fault: &env.fault };
            loop {
                sync.barrier.wait(); // window start: horizon published
                let h = sync.horizon.load(Ordering::SeqCst);
                if h == STOP {
                    break;
                }
                shard.run_window(h, &eenv);
                for dst in 0..n {
                    if dst == index || shard.outboxes[dst].is_empty() {
                        continue;
                    }
                    let replacement = {
                        let mut spares = sync.spares.lock().expect("spares poisoned");
                        spares.pop()
                    }
                    .unwrap_or_else(|| {
                        sync.fresh.fetch_add(1, Ordering::Relaxed);
                        Vec::new()
                    });
                    let batch = std::mem::replace(&mut shard.outboxes[dst], replacement);
                    sync.inboxes[dst].lock().expect("inbox poisoned").push(batch);
                }
                sync.barrier.wait(); // all cross-shard sends flushed
                let mine =
                    std::mem::take(&mut *sync.inboxes[index].lock().expect("inbox poisoned"));
                for mut batch in mine {
                    shard.absorb(&mut batch);
                    sync.spares.lock().expect("spares poisoned").push(batch);
                }
                sync.next_at[index].store(shard.head_us(), Ordering::SeqCst);
                sync.barrier.wait(); // local minima published
            }
        }
        // Release the shared state *before* returning the shard so the
        // coordinator can reclaim the spare pool without contention.
        drop(env);
        drop(sync);
        if shard_tx.send(shard).is_err() {
            return;
        }
    }
}

/// The discrete-event simulator.
pub struct Sim {
    cfg: SimConfig,
    now: SimTime,
    shards: Vec<Shard>,
    fault: FaultState,
    /// Harness RNG ([`Sim::rng`]), independent of all engine streams.
    harness_rng: StdRng,
    /// Master metric sink; shard deltas are merged into it at run
    /// boundaries.
    metrics: Metrics,
    next_node_id: u64,
    /// Sequence counter for control-plane events.
    control_seq: u64,
    /// Conservative lookahead window length in µs.
    lookahead_us: u64,
    /// Whether `run_until` uses worker threads (trace-invariant).
    threaded: bool,
    /// Persistent worker threads for threaded runs (spawned lazily on
    /// the first threaded `run_until`, reused across runs and windows).
    worker_pool: Option<WorkerPool>,
    /// Cross-shard batch vectors kept warm between threaded runs.
    exchange_spares: Vec<Vec<Event>>,
    /// Fresh exchange vectors created since the last metrics sync
    /// (flushed to the `net.pool_exchange_fresh` counter).
    exchange_fresh: u64,
}

impl Sim {
    /// Creates an empty simulation.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.shards == 0`, or if `cfg.shards > 1` with a profile
    /// whose [`NetProfile::min_delay`] is zero (conservative lookahead
    /// needs a positive minimum cross-shard latency).
    pub fn new(cfg: SimConfig) -> Self {
        assert!(cfg.shards >= 1, "a simulation needs at least one shard");
        let lookahead_us = cfg.profile.min_delay().as_micros();
        if cfg.shards > 1 {
            assert!(
                lookahead_us > 0,
                "sharded simulation requires profile.min_delay() > 0 \
                 (the lookahead window would be empty)"
            );
        }
        let threaded = cfg.shards > 1
            && cfg.threads.unwrap_or_else(|| {
                std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1) > 1
            });
        let harness_rng = StdRng::for_stream_lane(cfg.seed, 0, LANE_HARNESS);
        let shards = (0..cfg.shards).map(|i| Shard::new(i, &cfg)).collect();
        Sim {
            cfg,
            now: SimTime::ZERO,
            shards,
            fault: FaultState::default(),
            harness_rng,
            metrics: Metrics::new(),
            next_node_id: 0,
            control_seq: 0,
            lookahead_us,
            threaded,
            worker_pool: None,
            exchange_spares: Vec::new(),
            exchange_fresh: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.live).sum()
    }

    /// Whether the simulation has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live node identifiers in ascending order (deterministic).
    pub fn node_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self
            .shards
            .iter()
            .flat_map(|s| s.slots.iter().filter(|sl| sl.proto.is_some()).map(|sl| sl.id))
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Whether `id` is currently live.
    pub fn contains(&self, id: NodeId) -> bool {
        self.slot(id).is_some_and(|sl| sl.proto.is_some())
    }

    /// The NAT type of a live node.
    pub fn nat_type(&self, id: NodeId) -> Option<NatType> {
        let slot = self.slot(id)?;
        slot.proto.as_ref()?;
        Some(slot.nat.nat_type())
    }

    /// The metric sink.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to the metric sink (e.g. to reset between phases).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The harness RNG, for harness-level random choices that must stay
    /// deterministic (topology sampling, victim selection, …).
    /// Independent of every engine and per-node stream.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.harness_rng
    }

    /// Adds a node behind a NAT device of type `nat_type` and schedules
    /// its `on_start` at the current time. Returns its fresh identifier.
    ///
    /// Ids are assigned sequentially and never reused, which keeps every
    /// shard's arena dense (`NodeId % shards` picks the shard,
    /// `NodeId / shards` the slot).
    pub fn add_node(&mut self, protocol: Box<dyn Protocol>, nat_type: NatType) -> NodeId {
        let id = NodeId(self.next_node_id);
        self.next_node_id += 1;
        let seed = self.cfg.seed;
        let nshards = self.cfg.shards as u64;
        let shard = &mut self.shards[(id.0 % nshards) as usize];
        debug_assert_eq!(shard.slots.len() as u64, id.0 / nshards, "arena must stay dense");
        shard.slots.push(Slot {
            id,
            proto: Some(protocol),
            nat: NatDevice::new(nat_type),
            proto_rng: StdRng::for_stream_lane(seed, id.0, LANE_PROTO),
            link_rng: StdRng::for_stream_lane(seed, id.0, LANE_LINK),
            seq: 0,
            down_until: None,
            ge_bad: Vec::new(),
        });
        shard.hot.push(HOT_ALIVE | if nat_type.is_public() { HOT_PUBLIC } else { 0 });
        shard.traffic.push(Traffic::default());
        shard.live += 1;
        self.push_control(self.now, id, EventKind::Start { node: id });
        id
    }

    /// Removes a node abruptly (crash semantics: no notification, pending
    /// messages to it are dropped, its NAT state disappears). O(1).
    pub fn remove_node(&mut self, id: NodeId) {
        let shard = &mut self.shards[(id.0 % self.cfg.shards as u64) as usize];
        if let Some(pos) = shard.slot_pos(id) {
            let slot = &mut shard.slots[pos];
            if slot.proto.take().is_some() {
                slot.down_until = None;
                slot.nat = NatDevice::new(slot.nat.nat_type());
                shard.hot[pos] &= !(HOT_ALIVE | HOT_DOWN);
                shard.live -= 1;
            }
        }
    }

    /// Installs a [`FaultPlan`]: windowed faults (partition, burst loss,
    /// latency spike) take effect on the send path while their window is
    /// active; point-in-time faults (crash/restart, NAT rebind) are
    /// scheduled through the ordinary event queues as control-plane
    /// events, so their ordering relative to protocol events is
    /// deterministic (control events sort first at equal instants). May
    /// be called more than once; plans accumulate. Instants already in
    /// the past fire immediately.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        for fault in &plan.faults {
            match *fault {
                Fault::CrashRestart { node, at, restart_at } => {
                    self.push_control(at, node, EventKind::FaultCrash { node, restart_at });
                    self.push_control(restart_at, node, EventKind::FaultRestart { node });
                }
                Fault::NatRebind { node, at } => {
                    self.push_control(at, node, EventKind::FaultRebind { node });
                }
                _ => {}
            }
        }
        self.fault.install(plan);
    }

    /// Whether `id` is currently crashed by a
    /// [`Fault::CrashRestart`]. O(1).
    pub fn is_down(&self, id: NodeId) -> bool {
        self.slot(id).is_some_and(|sl| sl.down_until.is_some())
    }

    /// Number of messages currently in flight (queued `Deliver` events).
    /// The drop-attribution identity is
    /// `sends == deliveries + Σ drop counters + in_flight`.
    pub fn in_flight_msgs(&self) -> u64 {
        self.shards.iter().map(|s| s.in_flight).sum()
    }

    /// Immutable access to a node's protocol state, downcast to `T`.
    pub fn node<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.slot(id)?.proto.as_ref()?.as_any().downcast_ref::<T>()
    }

    /// Mutable access to a node's protocol state, downcast to `T`.
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.slot_mut(id)?.proto.as_mut()?.as_any_mut().downcast_mut::<T>()
    }

    /// Invokes `f` on the node as if from a protocol callback — used by
    /// harnesses to inject application commands (e.g. "issue a DHT
    /// lookup"). Effects are applied as usual. Returns `false` if the
    /// node is missing, crashed, or not a `T`.
    pub fn with_node_ctx<T: 'static>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx<'_>),
    ) -> bool {
        let now = self.now;
        let si = (id.0 % self.cfg.shards as u64) as usize;
        let applied = {
            let Sim { cfg, fault, shards, metrics, .. } = self;
            let env = EngineEnv { cfg, fault };
            let shard = &mut shards[si];
            let Some(pos) = shard.slot_pos(id) else { return false };
            shard.now = now;
            let Shard { slots, pool, prof, .. } = shard;
            let slot = &mut slots[pos];
            if slot.down_until.is_some() {
                return false; // a crashed node cannot run callbacks
            }
            let Some(mut proto) = slot.proto.take() else { return false };
            let mut ctx = Ctx {
                now,
                id,
                nat_type: slot.nat.nat_type(),
                rng: &mut slot.proto_rng,
                metrics,
                pool,
                tally: AllocTally::default(),
                prof: ProfCtx::new(prof.enabled),
                effects: Vec::new(),
            };
            let applied = if let Some(t) = proto.as_any_mut().downcast_mut::<T>() {
                f(t, &mut ctx);
                true
            } else {
                false
            };
            let effects = std::mem::take(&mut ctx.effects);
            std::mem::take(&mut ctx.tally).flush(ctx.metrics);
            std::mem::take(&mut ctx.prof).flush(prof);
            slot.proto = Some(proto);
            shard.apply_effects(pos, effects, &env);
            applied
        };
        exchange_sequential(&mut self.shards);
        self.sync_metrics();
        applied
    }

    /// Runs events until the queues are exhausted or `deadline` is
    /// reached; time ends exactly at `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        let deadline_us = deadline.as_micros();
        if self.cfg.shards == 1 {
            // Classic path: everything is local to the single shard, so
            // one "window" covering the whole run suffices.
            let Sim { cfg, fault, shards, .. } = self;
            let env = EngineEnv { cfg, fault };
            shards[0].run_window(deadline_us.saturating_add(1), &env);
            debug_assert!(
                shards[0].outboxes.iter().all(Vec::is_empty),
                "a single shard cannot emit cross-shard events"
            );
        } else if self.threaded {
            self.run_until_threaded(deadline_us);
        } else {
            self.run_until_sequential(deadline_us);
        }
        for shard in &mut self.shards {
            shard.now = deadline;
        }
        self.now = deadline;
        self.sync_metrics();
    }

    /// Runs for `d` of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        self.run_until(self.now + d);
    }

    /// Runs for `secs` seconds of simulated time.
    pub fn run_for_secs(&mut self, secs: u64) {
        self.run_for(SimDuration::from_secs(secs));
    }

    /// Sequential conservative-window loop: every shard processes the
    /// current window in turn, then cross-shard sends are exchanged.
    /// Byte-identical to the threaded loop.
    fn run_until_sequential(&mut self, deadline_us: u64) {
        let lookahead = self.lookahead_us;
        loop {
            let t_next = self.shards.iter_mut().map(Shard::head_us).min().unwrap_or(u64::MAX);
            if t_next > deadline_us {
                break;
            }
            let horizon = t_next.saturating_add(lookahead).min(deadline_us.saturating_add(1));
            {
                let Sim { cfg, fault, shards, .. } = self;
                let env = EngineEnv { cfg, fault };
                for shard in shards.iter_mut() {
                    shard.run_window(horizon, &env);
                }
            }
            exchange_sequential(&mut self.shards);
        }
    }

    /// Threaded conservative-window loop on the persistent worker pool:
    /// each worker owns its shard for the duration of the run, with
    /// three barrier crossings per window (process, exchange batches,
    /// publish local minima). Event keys make queue contents
    /// order-insensitive, so inbox arrival order cannot leak into the
    /// trace; batch vectors recycle through the shared spare pool.
    fn run_until_threaded(&mut self, deadline_us: u64) {
        let n = self.shards.len();
        self.ensure_worker_pool();
        let lookahead = self.lookahead_us;
        let next_at: Vec<AtomicU64> =
            self.shards.iter_mut().map(|s| AtomicU64::new(s.head_us())).collect();
        let env = Arc::new(RunEnv { cfg: self.cfg.clone(), fault: self.fault.clone() });
        let sync = Arc::new(RunSync {
            barrier: Barrier::new(n + 1),
            horizon: AtomicU64::new(0),
            next_at,
            inboxes: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            spares: Mutex::new(std::mem::take(&mut self.exchange_spares)),
            fresh: AtomicU64::new(0),
        });
        let pool = self.worker_pool.as_ref().expect("pool ensured above");
        for (index, shard) in std::mem::take(&mut self.shards).into_iter().enumerate() {
            let job =
                Job { shard, env: Arc::clone(&env), sync: Arc::clone(&sync), index };
            pool.workers[index]
                .job_tx
                .as_ref()
                .expect("pool alive")
                .send(job)
                .expect("worker alive");
        }
        // Coordinator: computes each window from the published minima.
        loop {
            let t_next =
                sync.next_at.iter().map(|a| a.load(Ordering::SeqCst)).min().unwrap_or(STOP);
            if t_next > deadline_us {
                sync.horizon.store(STOP, Ordering::SeqCst);
                sync.barrier.wait(); // release workers to observe STOP
                break;
            }
            let h = t_next.saturating_add(lookahead).min(deadline_us.saturating_add(1));
            sync.horizon.store(h, Ordering::SeqCst);
            sync.barrier.wait(); // window start
            sync.barrier.wait(); // sends flushed
            sync.barrier.wait(); // minima published
        }
        self.shards = pool
            .workers
            .iter()
            .map(|w| w.shard_rx.recv().expect("worker returns its shard"))
            .collect();
        self.exchange_fresh += sync.fresh.load(Ordering::SeqCst);
        // Workers have dropped their Arc clones (before returning their
        // shards), so the spare pool can be reclaimed for the next run.
        self.exchange_spares =
            std::mem::take(&mut *sync.spares.lock().expect("spares poisoned"));
    }

    /// Spawns the persistent worker pool if it does not exist yet (one
    /// worker per shard).
    fn ensure_worker_pool(&mut self) {
        let n = self.cfg.shards;
        if self.worker_pool.as_ref().is_some_and(|p| p.workers.len() == n) {
            return;
        }
        let workers = (0..n)
            .map(|_| {
                let (job_tx, job_rx) = mpsc::channel::<Job>();
                let (shard_tx, shard_rx) = mpsc::channel::<Shard>();
                let handle = std::thread::spawn(move || worker_loop(job_rx, shard_tx));
                PoolWorker { job_tx: Some(job_tx), shard_rx, handle: Some(handle) }
            })
            .collect();
        self.worker_pool = Some(WorkerPool { workers });
    }

    /// Pushes a control-plane event (owned by `node`'s shard).
    fn push_control(&mut self, at: SimTime, node: NodeId, kind: EventKind) {
        let at = at.max(self.now);
        let seq = self.control_seq;
        self.control_seq += 1;
        let si = (node.0 % self.cfg.shards as u64) as usize;
        self.shards[si].queue.push(Event { at, src: CONTROL_SRC, seq, kind });
    }

    fn slot(&self, id: NodeId) -> Option<&Slot> {
        let shard = &self.shards[(id.0 % self.cfg.shards as u64) as usize];
        let pos = shard.slot_pos(id)?;
        Some(&shard.slots[pos])
    }

    fn slot_mut(&mut self, id: NodeId) -> Option<&mut Slot> {
        let shard = &mut self.shards[(id.0 % self.cfg.shards as u64) as usize];
        let pos = shard.slot_pos(id)?;
        Some(&mut shard.slots[pos])
    }

    /// Drains every shard's delta metrics into the master sink in
    /// canonical event order. Pool statistics are flushed here too — into
    /// the `net.pool_*` counters, which are shard-local by nature and
    /// therefore exempt from the determinism-trace comparison (DESIGN.md
    /// §13), like the `*_wall_us` samples.
    fn sync_metrics(&mut self) {
        if self.exchange_fresh > 0 {
            self.metrics.count("net.pool_exchange_fresh", self.exchange_fresh);
            self.exchange_fresh = 0;
        }
        let deltas: Vec<Metrics> = self
            .shards
            .iter_mut()
            .map(|s| {
                let stats = s.pool.take_stats();
                for (name, v) in [
                    ("net.pool_hits", stats.hits),
                    ("net.pool_misses", stats.misses),
                    ("net.pool_miss_bytes", stats.miss_bytes),
                    ("net.pool_recycled", stats.recycled),
                    ("net.pool_drop_shared", stats.drop_shared),
                    ("net.pool_drop_full", stats.drop_full),
                ] {
                    if v > 0 {
                        s.metrics.count(name, v);
                    }
                }
                s.prof.flush(&mut s.metrics);
                // Fold the dense per-slot traffic deltas into the shard
                // sink (dirty positions only, then reset — the master map
                // merge below reconstructs per-node totals).
                let nshards = s.nshards;
                let base = s.index as u64;
                for pos in s.traffic_dirty.drain(..) {
                    let t = std::mem::take(&mut s.traffic[pos as usize]);
                    s.metrics.add_traffic(NodeId(pos as u64 * nshards + base), t);
                }
                std::mem::take(&mut s.metrics)
            })
            .collect();
        self.metrics.merge_shard_deltas(deltas);
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("nodes", &self.len())
            .field("shards", &self.shards.len())
            .field(
                "pending_events",
                &self.shards.iter().map(|s| s.queue.len()).sum::<usize>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nat::NatType;

    /// Test protocol: pings a target on start, echoes everything back,
    /// counts deliveries, re-arms a periodic timer.
    struct Pinger {
        target: Option<Endpoint>,
        received: Vec<(NodeId, Vec<u8>)>,
        timer_fires: u32,
        periodic: bool,
    }

    impl Pinger {
        fn new() -> Self {
            Pinger { target: None, received: Vec::new(), timer_fires: 0, periodic: false }
        }
    }

    impl Protocol for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if let Some(t) = self.target {
                ctx.send_to(t, b"ping".to_vec());
            }
            if self.periodic {
                ctx.set_timer(SimDuration::from_secs(1), 1);
            }
        }
        fn on_message(
            &mut self,
            ctx: &mut Ctx<'_>,
            from: NodeId,
            from_ep: Endpoint,
            data: &Payload,
        ) {
            self.received.push((from, data.to_vec()));
            if data.as_slice() == b"ping" {
                ctx.send_to(from_ep, b"pong".to_vec());
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            self.timer_fires += 1;
            if self.periodic && self.timer_fires < 5 {
                ctx.set_timer(SimDuration::from_secs(1), token);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn ping_pong_between_public_nodes() {
        let mut sim = Sim::new(SimConfig::ideal(1));
        let b = sim.add_node(Box::new(Pinger::new()), NatType::Public);
        let mut a_proto = Pinger::new();
        a_proto.target = Some(Endpoint::public(b));
        let a = sim.add_node(Box::new(a_proto), NatType::Public);
        sim.run_for_secs(1);
        let a_state: &Pinger = sim.node(a).unwrap();
        assert_eq!(a_state.received.len(), 1);
        assert_eq!(a_state.received[0].1, b"pong");
        let b_state: &Pinger = sim.node(b).unwrap();
        assert_eq!(b_state.received[0].0, a);
    }

    #[test]
    fn reply_to_natted_sender_via_observed_endpoint() {
        // A is behind a port-restricted NAT; B replies to A's observed
        // endpoint and the reply passes the filter.
        let mut sim = Sim::new(SimConfig::ideal(2));
        let b = sim.add_node(Box::new(Pinger::new()), NatType::Public);
        let mut a_proto = Pinger::new();
        a_proto.target = Some(Endpoint::public(b));
        let a = sim.add_node(Box::new(a_proto), NatType::PortRestrictedCone);
        sim.run_for_secs(1);
        let a_state: &Pinger = sim.node(a).unwrap();
        assert_eq!(a_state.received.len(), 1, "pong must traverse A's NAT");
    }

    #[test]
    fn unsolicited_message_to_natted_node_blocked() {
        let mut sim = Sim::new(SimConfig::ideal(3));
        let victim = sim.add_node(Box::new(Pinger::new()), NatType::RestrictedCone);
        let mut a_proto = Pinger::new();
        // Guess an endpoint; nothing was opened, so it must be dropped.
        a_proto.target = Some(Endpoint { node: victim, port: 1 });
        sim.add_node(Box::new(a_proto), NatType::Public);
        sim.run_for_secs(1);
        let v: &Pinger = sim.node(victim).unwrap();
        assert!(v.received.is_empty());
        assert_eq!(sim.metrics().counter("net.nat_blocked"), 1);
    }

    #[test]
    fn timers_fire_and_rearm() {
        let mut sim = Sim::new(SimConfig::ideal(4));
        let mut p = Pinger::new();
        p.periodic = true;
        let id = sim.add_node(Box::new(p), NatType::Public);
        sim.run_for_secs(10);
        let state: &Pinger = sim.node(id).unwrap();
        assert_eq!(state.timer_fires, 5);
    }

    #[test]
    fn dead_node_receives_nothing() {
        let mut sim = Sim::new(SimConfig::ideal(5));
        let b = sim.add_node(Box::new(Pinger::new()), NatType::Public);
        let mut a_proto = Pinger::new();
        a_proto.target = Some(Endpoint::public(b));
        sim.add_node(Box::new(a_proto), NatType::Public);
        sim.remove_node(b);
        sim.run_for_secs(1);
        assert_eq!(sim.metrics().counter("net.drop_dead_target"), 1);
        assert!(!sim.contains(b));
    }

    #[test]
    fn bandwidth_is_accounted() {
        let mut sim = Sim::new(SimConfig::ideal(6));
        let b = sim.add_node(Box::new(Pinger::new()), NatType::Public);
        let mut a_proto = Pinger::new();
        a_proto.target = Some(Endpoint::public(b));
        let a = sim.add_node(Box::new(a_proto), NatType::Public);
        sim.run_for_secs(1);
        let ta = sim.metrics().traffic(a);
        let tb = sim.metrics().traffic(b);
        assert_eq!(ta.up_msgs, 1);
        assert_eq!(ta.down_msgs, 1);
        assert_eq!(tb.up_msgs, 1);
        assert!(ta.up_bytes > 4, "headers counted");
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> (u64, u64) {
            let mut sim = Sim::new(SimConfig::cluster(seed));
            let b = sim.add_node(Box::new(Pinger::new()), NatType::Public);
            for _ in 0..20 {
                let mut p = Pinger::new();
                p.target = Some(Endpoint::public(b));
                p.periodic = true;
                sim.add_node(Box::new(p), NatType::RestrictedCone);
            }
            sim.run_for_secs(30);
            let t = sim.metrics().traffic(b);
            (t.down_bytes, t.up_bytes)
        }
        assert_eq!(run(7), run(7));
        assert_eq!(run(8), run(8));
    }

    #[test]
    fn with_node_ctx_injects_commands() {
        let mut sim = Sim::new(SimConfig::ideal(8));
        let b = sim.add_node(Box::new(Pinger::new()), NatType::Public);
        let a = sim.add_node(Box::new(Pinger::new()), NatType::Public);
        let ok = sim.with_node_ctx::<Pinger>(a, |_p, ctx| {
            ctx.send_to(Endpoint::public(b), b"ping".to_vec());
        });
        assert!(ok);
        sim.run_for_secs(1);
        let b_state: &Pinger = sim.node(b).unwrap();
        assert_eq!(b_state.received.len(), 1);
    }

    #[test]
    fn run_until_lands_exactly_on_deadline() {
        let mut sim = Sim::new(SimConfig::ideal(9));
        sim.run_until(SimTime::from_micros(123_456));
        assert_eq!(sim.now().as_micros(), 123_456);
    }

    /// The heart of the sharding contract: the same seed produces the
    /// same trace for 1, 2 and 4 shards, sequential or threaded.
    #[test]
    fn sharded_run_matches_single_shard() {
        fn run(shards: usize, threads: bool) -> (Vec<(&'static str, u64)>, Vec<u64>) {
            let cfg = SimConfig::cluster(21)
                .with_shards(shards)
                .with_threads(threads)
                .with_profiling(true);
            let mut sim = Sim::new(cfg);
            let hub = sim.add_node(Box::new(Pinger::new()), NatType::Public);
            for _ in 0..7 {
                let mut p = Pinger::new();
                p.target = Some(Endpoint::public(hub));
                p.periodic = true;
                sim.add_node(Box::new(p), NatType::RestrictedCone);
            }
            sim.run_for_secs(10);
            // Pool hit/miss statistics are shard-local by design (a
            // buffer freed on shard i is only reusable there) and the
            // profiler buckets are wall-clock measurements; both families
            // are exempt from shard invariance (profiling is ON here to
            // prove everything else stays byte-identical).
            let counters = sim
                .metrics()
                .counter_names()
                .filter(|n| !n.starts_with("net.pool_") && !n.starts_with("prof."))
                .map(|n| (n, sim.metrics().counter(n)))
                .collect();
            let traffic = sim
                .node_ids()
                .iter()
                .map(|&id| {
                    let t = sim.metrics().traffic(id);
                    t.up_bytes ^ t.down_bytes.rotate_left(17) ^ (t.up_msgs << 32) ^ t.down_msgs
                })
                .collect();
            (counters, traffic)
        }
        let base = run(1, false);
        assert_eq!(base, run(2, false), "2 shards, sequential");
        assert_eq!(base, run(4, false), "4 shards, sequential");
        assert_eq!(base, run(4, true), "4 shards, threaded");
    }

    /// Profiling populates the `prof.*` buckets; leaving it off (the
    /// default) emits none of them.
    #[test]
    fn profiler_buckets_accumulate_only_when_enabled() {
        fn run(profiling: bool) -> Vec<(&'static str, u64)> {
            let mut sim = Sim::new(SimConfig::cluster(33).with_profiling(profiling));
            let hub = sim.add_node(Box::new(Pinger::new()), NatType::Public);
            let mut p = Pinger::new();
            p.target = Some(Endpoint::public(hub));
            p.periodic = true;
            sim.add_node(Box::new(p), NatType::Public);
            sim.run_for_secs(5);
            sim.metrics()
                .counter_names()
                .filter(|n| n.starts_with("prof."))
                .map(|n| (n, sim.metrics().counter(n)))
                .collect()
        }
        assert!(run(false).is_empty(), "profiler off must emit no prof.* counters");
        let on = run(true);
        let get = |name: &str| on.iter().find(|(n, _)| *n == name).map_or(0, |(_, v)| *v);
        assert!(get("prof.events") > 0, "events dispatched under the profiler");
        assert!(get("prof.sched_ns") > 0, "scheduler bucket populated");
        // dispatch time contains the callback time, so the derived
        // engine bucket plus callbacks can never exceed dispatch totals.
        assert!(get("prof.callback_ns") > 0, "callback bucket populated");
    }
}
