//! Statistics helpers for reproducing the paper's plots: CDFs, stacked
//! percentiles (Fig. 8) and simple summaries.

/// A collection of samples with percentile/CDF queries.
#[derive(Clone, Debug, Default)]
pub struct Cdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Cdf {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Cdf::default()
    }

    /// Builds directly from samples.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut c = Cdf::new();
        for s in samples {
            c.push(s);
        }
        c
    }

    /// Adds one sample.
    pub fn push(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
    }

    /// The `p`-th percentile (0 ≤ p ≤ 100) by nearest-rank.
    ///
    /// # Panics
    ///
    /// Panics if the collection is empty or `p` out of range.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!(!self.samples.is_empty(), "percentile of empty Cdf");
        assert!((0.0..=100.0).contains(&p));
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.samples[rank.clamp(1, n) - 1]
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Arithmetic mean.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn mean(&self) -> f64 {
        assert!(!self.samples.is_empty(), "mean of empty Cdf");
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Smallest sample.
    pub fn min(&mut self) -> f64 {
        self.ensure_sorted();
        self.samples[0]
    }

    /// Largest sample.
    pub fn max(&mut self) -> f64 {
        self.ensure_sorted();
        *self.samples.last().expect("max of empty Cdf")
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_below(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let count = self.samples.partition_point(|&v| v <= x);
        count as f64 / self.samples.len() as f64
    }

    /// `points` evenly spaced CDF points `(value, cumulative fraction)`,
    /// suitable for plotting exactly like the paper's CDF figures.
    pub fn points(&mut self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2);
        if self.samples.is_empty() {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples.len();
        (0..points)
            .map(|i| {
                let idx = if points == 1 { 0 } else { i * (n - 1) / (points - 1) };
                (self.samples[idx], (idx + 1) as f64 / n as f64)
            })
            .collect()
    }

    /// The stacked-percentile summary used by Fig. 8: (5th, 25th, 50th,
    /// 75th, 90th).
    pub fn stacked_percentiles(&mut self) -> [f64; 5] {
        [
            self.percentile(5.0),
            self.percentile(25.0),
            self.percentile(50.0),
            self.percentile(75.0),
            self.percentile(90.0),
        ]
    }
}

/// Renders a fixed-width row of `label` followed by values — the bench
/// binaries print tables the way the paper formats them.
pub fn format_row(label: &str, values: &[f64], precision: usize) -> String {
    let mut out = format!("{label:<28}");
    for v in values {
        out.push_str(&format!(" {v:>12.precision$}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let mut c = Cdf::from_samples((1..=100).map(|i| i as f64));
        assert_eq!(c.percentile(50.0), 50.0);
        assert_eq!(c.percentile(90.0), 90.0);
        assert_eq!(c.percentile(100.0), 100.0);
        assert_eq!(c.percentile(0.0), 1.0);
        assert_eq!(c.percentile(1.0), 1.0);
    }

    #[test]
    fn single_sample() {
        let mut c = Cdf::from_samples([42.0]);
        assert_eq!(c.median(), 42.0);
        assert_eq!(c.min(), 42.0);
        assert_eq!(c.max(), 42.0);
        assert_eq!(c.mean(), 42.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_percentile_panics() {
        Cdf::new().percentile(50.0);
    }

    #[test]
    fn fraction_below() {
        let mut c = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_below(2.0), 0.5);
        assert_eq!(c.fraction_below(0.5), 0.0);
        assert_eq!(c.fraction_below(10.0), 1.0);
        assert_eq!(Cdf::new().fraction_below(1.0), 0.0);
    }

    #[test]
    fn points_cover_range() {
        let mut c = Cdf::from_samples((0..1000).map(|i| i as f64));
        let pts = c.points(11);
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts[10].0, 999.0);
        assert!((pts[10].1 - 1.0).abs() < 1e-9);
        // Monotone in both coordinates.
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn stacked_percentiles_ordered() {
        let mut c = Cdf::from_samples((0..500).map(|i| (i as f64).sqrt()));
        let sp = c.stacked_percentiles();
        for w in sp.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn unsorted_pushes_are_handled() {
        let mut c = Cdf::new();
        for v in [5.0, 1.0, 3.0] {
            c.push(v);
        }
        assert_eq!(c.min(), 1.0);
        c.push(0.5);
        assert_eq!(c.min(), 0.5, "re-sorts after new push");
    }

    #[test]
    fn format_row_alignment() {
        let row = format_row("success", &[98.3, 1.42], 2);
        assert!(row.starts_with("success"));
        assert!(row.contains("98.30"));
        assert!(row.contains("1.42"));
    }
}
