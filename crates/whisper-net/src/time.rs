//! Simulated time: microsecond-resolution instants and durations.
//!
//! [`SimTime`] is the *only* clock the engine and every protocol may
//! consult — wall-clock time never enters a trace-visible path (the
//! determinism contract, DESIGN.md §12). Time is a plain `u64` count of
//! microseconds since the start of the run; it advances exclusively by
//! event delivery, identically for every shard count and thread policy.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in microseconds from the start of
/// the run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

/// A span of simulated time in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// Time zero (simulation start).
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Microseconds since simulation start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since simulation start.
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole seconds since simulation start.
    pub fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start, fractional.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier is in the future"),
        )
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// Constructs from seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// Microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole seconds.
    pub fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds, fractional.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

}

impl std::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0 * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    /// Saturates at time zero.
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.as_millis(), 2000);
        assert_eq!(d.as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(1500).as_secs(), 1);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        assert_eq!(t.as_millis(), 10);
        let later = t + SimDuration::from_millis(5);
        assert_eq!(later.since(t).as_millis(), 5);
        assert_eq!((SimDuration::from_secs(1) * 3).as_secs(), 3);
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn since_panics_backwards() {
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        let _ = SimTime::ZERO.since(t);
    }

    #[test]
    fn saturating_sub_duration() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(b - a, SimDuration::from_millis(1));
    }
}
