//! A compact hand-rolled binary codec.
//!
//! Every message placed on the simulated wire is really serialized with
//! this codec, so bandwidth measurements reflect actual byte counts rather
//! than estimates. Integers are big-endian; variable-length fields carry
//! explicit length prefixes.
//!
//! ```
//! use whisper_net::wire::{WireReader, WireWriter, WireEncode, WireDecode};
//!
//! let mut w = WireWriter::new();
//! w.put_u32(7);
//! w.put_bytes(b"abc");
//! let buf = w.into_bytes();
//!
//! let mut r = WireReader::new(&buf);
//! assert_eq!(r.take_u32().unwrap(), 7);
//! assert_eq!(r.take_bytes().unwrap(), b"abc");
//! assert!(r.finish().is_ok());
//! ```

use std::error::Error;
use std::fmt;

/// Error returned when decoding malformed or truncated input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireError {
    what: &'static str,
}

impl WireError {
    /// Creates an error with a static description.
    pub fn new(what: &'static str) -> Self {
        WireError { what }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.what)
    }
}

impl Error for WireError {}

/// Serialization sink.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        WireWriter { buf: Vec::new() }
    }

    /// Creates an empty writer pre-sized for `capacity` bytes — pair with
    /// [`WireEncode::encoded_len`] to serialize without reallocation.
    pub fn with_capacity(capacity: usize) -> Self {
        WireWriter { buf: Vec::with_capacity(capacity) }
    }

    /// Creates a writer backed by `buf`, clearing any existing contents
    /// but keeping its capacity — the hook that lets pooled payload
    /// buffers back wire encodes without reallocating.
    pub fn from_vec(mut buf: Vec<u8>) -> Self {
        buf.clear();
        WireWriter { buf }
    }

    /// Current serialized length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a length-prefixed byte string (`u32` length).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends raw bytes with no length prefix (fixed-size fields).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends an encodable value.
    pub fn put<T: WireEncode + ?Sized>(&mut self, v: &T) {
        v.encode(self);
    }

    /// Appends a length-prefixed sequence of encodable values.
    pub fn put_seq<T: WireEncode>(&mut self, items: &[T]) {
        self.put_u32(items.len() as u32);
        for item in items {
            item.encode(self);
        }
    }

    /// Appends an optional value as a presence byte plus the value.
    pub fn put_opt<T: WireEncode>(&mut self, v: &Option<T>) {
        match v {
            Some(inner) => {
                self.put_u8(1);
                inner.encode(self);
            }
            None => self.put_u8(0),
        }
    }
}

/// Deserialization cursor over a byte slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn advance(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::new("truncated input"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u8`.
    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.advance(1)?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.advance(2)?.try_into().unwrap()))
    }

    /// Reads a big-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.advance(4)?.try_into().unwrap()))
    }

    /// Reads a big-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.advance(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.take_u32()? as usize;
        self.advance(len)
    }

    /// Reads exactly `n` raw bytes.
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.advance(n)
    }

    /// Reads a decodable value.
    pub fn take<T: WireDecode>(&mut self) -> Result<T, WireError> {
        T::decode(self)
    }

    /// Reads a length-prefixed sequence.
    ///
    /// The length is sanity-checked against the remaining input so a
    /// corrupted prefix cannot trigger an enormous allocation.
    pub fn take_seq<T: WireDecode>(&mut self) -> Result<Vec<T>, WireError> {
        let len = self.take_u32()? as usize;
        if len > self.remaining() {
            // Every element occupies at least one byte.
            return Err(WireError::new("sequence length exceeds input"));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(self)?);
        }
        Ok(out)
    }

    /// Reads an optional value written by [`WireWriter::put_opt`].
    pub fn take_opt<T: WireDecode>(&mut self) -> Result<Option<T>, WireError> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(self)?)),
            _ => Err(WireError::new("invalid option tag")),
        }
    }

    /// Asserts that the whole input has been consumed.
    ///
    /// # Errors
    ///
    /// Fails if trailing bytes remain — protocols treat that as a
    /// malformed message.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::new("trailing bytes"))
        }
    }
}

/// Exact wire size of a length-prefixed byte string
/// ([`WireWriter::put_bytes`]).
pub const fn bytes_len(v: &[u8]) -> usize {
    4 + v.len()
}

/// Exact wire size of a length-prefixed sequence
/// ([`WireWriter::put_seq`]).
pub fn seq_len<T: WireEncode>(items: &[T]) -> usize {
    4 + items.iter().map(T::encoded_len).sum::<usize>()
}

/// Exact wire size of an optional value ([`WireWriter::put_opt`]).
pub fn opt_len<T: WireEncode>(v: &Option<T>) -> usize {
    1 + v.as_ref().map_or(0, T::encoded_len)
}

/// Types serializable with the wire codec.
pub trait WireEncode {
    /// Appends this value to `w`.
    fn encode(&self, w: &mut WireWriter);

    /// Exact number of bytes [`WireEncode::encode`] will append — the
    /// contract every implementation must uphold so writers can pre-size
    /// buffers precisely (checked by a debug assertion in
    /// [`WireEncode::to_wire`] and the engine's pooled encode path). The
    /// helpers [`bytes_len`], [`seq_len`] and [`opt_len`] mirror the
    /// variable-length writer methods.
    fn encoded_len(&self) -> usize;

    /// Convenience: serializes into a fresh, exactly-sized buffer.
    fn to_wire(&self) -> Vec<u8>
    where
        Self: Sized,
    {
        let mut w = WireWriter::with_capacity(self.encoded_len());
        self.encode(&mut w);
        debug_assert_eq!(
            w.len(),
            self.encoded_len(),
            "encoded_len() disagrees with encode()"
        );
        w.into_bytes()
    }
}

/// Types deserializable with the wire codec.
pub trait WireDecode: Sized {
    /// Reads one value from `r`.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Convenience: parses a complete buffer, rejecting trailing bytes.
    fn from_wire(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

macro_rules! impl_wire_uint {
    ($ty:ty, $put:ident, $take:ident) => {
        impl WireEncode for $ty {
            fn encode(&self, w: &mut WireWriter) {
                w.$put(*self);
            }
            fn encoded_len(&self) -> usize {
                std::mem::size_of::<$ty>()
            }
        }
        impl WireDecode for $ty {
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                r.$take()
            }
        }
    };
}

impl_wire_uint!(u8, put_u8, take_u8);
impl_wire_uint!(u16, put_u16, take_u16);
impl_wire_uint!(u32, put_u32, take_u32);
impl_wire_uint!(u64, put_u64, take_u64);

impl WireEncode for Vec<u8> {
    fn encode(&self, w: &mut WireWriter) {
        w.put_bytes(self);
    }
    fn encoded_len(&self) -> usize {
        bytes_len(self)
    }
}

impl WireDecode for Vec<u8> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(r.take_bytes()?.to_vec())
    }
}

impl WireEncode for bool {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(*self as u8);
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl WireDecode for bool {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::new("invalid bool")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trip() {
        let mut w = WireWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEADBEEF);
        w.put_u64(0x0102030405060708);
        let buf = w.into_bytes();
        assert_eq!(buf.len(), 1 + 2 + 4 + 8);
        let mut r = WireReader::new(&buf);
        assert_eq!(r.take_u8().unwrap(), 0xAB);
        assert_eq!(r.take_u16().unwrap(), 0x1234);
        assert_eq!(r.take_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.take_u64().unwrap(), 0x0102030405060708);
        r.finish().unwrap();
    }

    #[test]
    fn bytes_round_trip() {
        let mut w = WireWriter::new();
        w.put_bytes(b"hello");
        w.put_bytes(b"");
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.take_bytes().unwrap(), b"hello");
        assert_eq!(r.take_bytes().unwrap(), b"");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_detected() {
        let mut w = WireWriter::new();
        w.put_u64(42);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf[..5]);
        assert!(r.take_u64().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let buf = [1u8, 2, 3];
        let mut r = WireReader::new(&buf);
        let _ = r.take_u8().unwrap();
        assert_eq!(r.finish(), Err(WireError::new("trailing bytes")));
    }

    #[test]
    fn sequences_round_trip() {
        let items: Vec<u32> = vec![1, 2, 3, 500];
        let mut w = WireWriter::new();
        w.put_seq(&items);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.take_seq::<u32>().unwrap(), items);
    }

    #[test]
    fn absurd_sequence_length_rejected() {
        let mut w = WireWriter::new();
        w.put_u32(u32::MAX); // claimed length
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert!(r.take_seq::<u64>().is_err());
    }

    #[test]
    fn options_round_trip() {
        let mut w = WireWriter::new();
        w.put_opt(&Some(9u32));
        w.put_opt::<u32>(&None);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.take_opt::<u32>().unwrap(), Some(9));
        assert_eq!(r.take_opt::<u32>().unwrap(), None);
    }

    #[test]
    fn invalid_option_tag_rejected() {
        let mut r = WireReader::new(&[7]);
        assert!(r.take_opt::<u32>().is_err());
    }

    #[test]
    fn bool_round_trip_and_validation() {
        let mut w = WireWriter::new();
        w.put(&true);
        w.put(&false);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert!(r.take::<bool>().unwrap());
        assert!(!r.take::<bool>().unwrap());
        let mut bad = WireReader::new(&[9]);
        assert!(bad.take::<bool>().is_err());
    }

    #[test]
    fn to_wire_is_exactly_sized() {
        let v: Vec<u8> = vec![1, 2, 3];
        let buf = v.to_wire();
        assert_eq!(buf.len(), v.encoded_len());
        assert_eq!(buf.capacity(), v.encoded_len(), "pre-sized, no reallocation");
        assert_eq!(bytes_len(b"abc"), 7);
        assert_eq!(seq_len(&[1u32, 2, 3]), 4 + 12);
        assert_eq!(opt_len(&Some(7u64)), 9);
        assert_eq!(opt_len::<u64>(&None), 1);
    }

    #[test]
    fn to_wire_from_wire_round_trip() {
        let v = 123456u64;
        let buf = v.to_wire();
        assert_eq!(u64::from_wire(&buf).unwrap(), v);
        assert!(u64::from_wire(&buf[..3]).is_err());
    }
}
