//! Reference-counted message payloads and the per-shard buffer pool.
//!
//! Every simulated packet used to carry its own `Vec<u8>`, allocated at
//! the sender and freed after delivery — one heap round-trip per event,
//! which dominates the engine's per-event cost at 100k+ nodes. This
//! module removes that traffic:
//!
//! * [`Payload`] is a zero-dependency `Arc<[u8]>`-style buffer. Cloning
//!   is a reference-count bump, so fan-out (the same bytes sent to N
//!   peers) shares one allocation instead of making N copies.
//! * [`PayloadPool`] is a free list of retired buffers keyed by
//!   power-of-two size class. Each engine shard owns one: buffers are
//!   drawn at encode time ([`Ctx::send_wire`](crate::sim::Ctx::send_wire))
//!   and recycled after `on_message` returns, when the engine holds the
//!   only reference.
//!
//! # Ownership and aliasing rules (DESIGN.md §13)
//!
//! A `Payload` is **immutable for its entire lifetime as a message**: it
//! is filled exactly once (at encode time, while uniquely owned) and
//! never mutated afterwards. Protocols receive `&Payload` in
//! `on_message` and may clone it freely; clones are snapshots — the
//! engine only returns a buffer to the pool when `Arc::strong_count`
//! proves no other reference exists, so reuse is never observable.
//! Pools are strictly shard-local: a buffer freed on shard *i* can only
//! be reused by shard *i*, which is why pool hit/miss statistics (the
//! `net.pool_*` counters) are the one counter family that legitimately
//! varies with the shard count, and why they are exempt from the
//! determinism-trace comparison — exactly like the `*_wall_us` samples.
//! Everything else (payload bytes, event order, and — for a fixed
//! pooling mode — the `net.alloc*` / `net.payload_*` provenance
//! counters) stays byte-identical for any shard count, and the delivered
//! bytes are identical whether pooling is on or off. The provenance
//! counters deliberately *differ* between pooling modes: that difference
//! is the allocations-per-event measurement.

use std::ops::Deref;
use std::sync::Arc;

/// Smallest buffer capacity the pool retains (class 0).
const MIN_CLASS_CAP: usize = 64;
/// Number of power-of-two size classes (64 B … 8 KiB, last unbounded).
const NUM_CLASSES: usize = 8;
/// Retained buffers per class; beyond this, returned buffers are freed.
const CLASS_LIMIT: usize = 4096;
/// Capacity hint for encode scratch buffers when the final size is
/// unknown (typical gossip / circuit packets are a few hundred bytes).
const ENCODE_HINT: usize = 512;

/// An immutable, reference-counted message payload.
///
/// Constructed from a `Vec<u8>` (fresh allocation) or drawn from a
/// [`PayloadPool`] (recycled buffer); cloning bumps a reference count.
/// The `pooled` provenance flag feeds the engine's deterministic
/// allocation accounting (`net.alloc_bytes` vs `net.payload_pooled`) —
/// it never affects behaviour.
#[derive(Clone)]
pub struct Payload {
    buf: Arc<Vec<u8>>,
    pooled: bool,
}

impl Payload {
    /// Wraps a freshly allocated buffer (counted as an allocation at the
    /// engine boundary).
    pub fn fresh(buf: Vec<u8>) -> Self {
        Payload { buf: Arc::new(buf), pooled: false }
    }

    /// Wraps a buffer whose storage came from a pool. `pooled` is false
    /// when the owning pool is disabled, so A/B runs account the same
    /// bytes as fresh allocations.
    pub(crate) fn recycled(buf: Vec<u8>, pooled: bool) -> Self {
        Payload { buf: Arc::new(buf), pooled }
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Whether the backing storage was drawn from a [`PayloadPool`].
    pub fn is_pooled(&self) -> bool {
        self.pooled
    }

    /// Whether other clones of this payload are alive.
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.buf) > 1
    }

    /// Recovers the backing buffer if this is the only reference.
    fn into_unique_buf(self) -> Option<Vec<u8>> {
        Arc::try_unwrap(self.buf).ok()
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for Payload {
    fn from(buf: Vec<u8>) -> Self {
        Payload::fresh(buf)
    }
}

impl From<&[u8]> for Payload {
    fn from(bytes: &[u8]) -> Self {
        Payload::fresh(bytes.to_vec())
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Payload")
            .field("len", &self.buf.len())
            .field("pooled", &self.pooled)
            .field("shared", &self.is_shared())
            .finish()
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Payload {}

/// Host-side (never trace-visible) pool statistics, drained into the
/// exempt `net.pool_*` counters at metric sync points.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct PoolStats {
    /// Buffers served from a free list.
    pub hits: u64,
    /// Requests served by a fresh allocation.
    pub misses: u64,
    /// Bytes allocated on misses (capacity requested).
    pub miss_bytes: u64,
    /// Buffers returned to a free list.
    pub recycled: u64,
    /// Returns dropped because a clone was still alive.
    pub drop_shared: u64,
    /// Returns dropped because the class was full (or the buffer tiny).
    pub drop_full: u64,
}

/// A free list of retired payload buffers, keyed by power-of-two size
/// class. One per engine shard; never shared across shards or threads.
#[derive(Debug)]
pub struct PayloadPool {
    enabled: bool,
    classes: Vec<Vec<Vec<u8>>>,
    stats: PoolStats,
}

impl PayloadPool {
    /// Creates a pool. A disabled pool always misses and never retains —
    /// the engine's `pooling: false` A/B mode.
    pub fn new(enabled: bool) -> Self {
        PayloadPool { enabled, classes: vec![Vec::new(); NUM_CLASSES], stats: PoolStats::default() }
    }

    /// Whether this pool retains and serves buffers.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Smallest class whose buffers are guaranteed to hold `len` bytes.
    fn class_for_take(len: usize) -> usize {
        let mut class = 0;
        while class < NUM_CLASSES - 1 && (MIN_CLASS_CAP << class) < len {
            class += 1;
        }
        class
    }

    /// Largest class whose minimum capacity `cap` satisfies.
    fn class_for_put(cap: usize) -> usize {
        let mut class = 0;
        while class < NUM_CLASSES - 1 && (MIN_CLASS_CAP << (class + 1)) <= cap {
            class += 1;
        }
        class
    }

    /// Takes an empty buffer with capacity ≥ `min_capacity` when one is
    /// available (preferring the tightest size class), else allocates.
    ///
    /// A disabled pool records no statistics: its allocations surface as
    /// fresh-provenance payloads in the deterministic `net.allocs`
    /// accounting instead, so the honest total heap-allocation figure is
    /// always `net.allocs + net.pool_misses` with no double counting.
    pub fn take(&mut self, min_capacity: usize) -> Vec<u8> {
        let start = Self::class_for_take(min_capacity);
        // Miss allocations are rounded up to their class's guarantee so a
        // returned buffer lands back in the class future same-size takes
        // scan first (an exact-size allocation would recycle one class
        // down and never be found again).
        let cap = min_capacity.max(MIN_CLASS_CAP << start);
        if self.enabled {
            // Tightest fitting class first, then larger ones. The top
            // class is unbounded above, so a buffer served from it for an
            // oversized request may still need to grow — harmless.
            for class in start..NUM_CLASSES {
                if let Some(buf) = self.classes[class].pop() {
                    self.stats.hits += 1;
                    return buf;
                }
            }
            self.stats.misses += 1;
            self.stats.miss_bytes += cap as u64;
        }
        Vec::with_capacity(cap)
    }

    /// Takes a scratch buffer for wire encoding (final size unknown).
    pub fn take_scratch(&mut self) -> Vec<u8> {
        self.take(ENCODE_HINT)
    }

    /// Returns a payload's buffer to the free list when the engine holds
    /// the only reference; otherwise the storage is simply dropped (or
    /// kept alive by its clones).
    pub fn recycle(&mut self, payload: Payload) {
        if !self.enabled {
            return;
        }
        if payload.is_shared() {
            self.stats.drop_shared += 1;
            return;
        }
        let Some(mut buf) = payload.into_unique_buf() else {
            self.stats.drop_shared += 1;
            return;
        };
        let cap = buf.capacity();
        if cap < MIN_CLASS_CAP {
            self.stats.drop_full += 1;
            return;
        }
        let class = Self::class_for_put(cap);
        if self.classes[class].len() >= CLASS_LIMIT {
            self.stats.drop_full += 1;
            return;
        }
        buf.clear();
        self.stats.recycled += 1;
        self.classes[class].push(buf);
    }

    /// Drains and resets the accumulated statistics.
    pub(crate) fn take_stats(&mut self) -> PoolStats {
        std::mem::take(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let p = Payload::fresh(vec![1, 2, 3]);
        assert!(!p.is_shared());
        let q = p.clone();
        assert!(p.is_shared() && q.is_shared());
        assert_eq!(&p[..], &q[..]);
        drop(q);
        assert!(!p.is_shared());
    }

    #[test]
    fn pool_round_trip_reuses_capacity() {
        let mut pool = PayloadPool::new(true);
        let buf = pool.take(100);
        assert!(buf.capacity() >= 100);
        let cap = buf.capacity();
        pool.recycle(Payload::recycled(buf, true));
        let again = pool.take(100);
        assert_eq!(again.capacity(), cap, "same buffer came back");
        assert!(again.is_empty(), "recycled buffers are cleared");
        let stats = pool.take_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.recycled, 1);
    }

    #[test]
    fn shared_payloads_are_never_recycled() {
        let mut pool = PayloadPool::new(true);
        let p = Payload::recycled(pool.take(64), true);
        let clone = p.clone();
        pool.recycle(p);
        // The clone still sees its bytes; the buffer was not retained.
        assert_eq!(clone.len(), 0);
        let stats = pool.take_stats();
        assert_eq!(stats.recycled, 0);
        assert_eq!(stats.drop_shared, 1);
        assert!(pool.take(64).capacity() >= 64); // fresh, not the shared one
    }

    #[test]
    fn disabled_pool_allocates_and_records_nothing() {
        let mut pool = PayloadPool::new(false);
        let buf = pool.take(64);
        pool.recycle(Payload::recycled(buf, false));
        let again = pool.take(64);
        assert!(again.capacity() >= 64);
        // Allocations on a disabled pool are accounted as fresh payloads
        // by the engine tally, never as pool misses.
        let stats = pool.take_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.recycled, 0);
    }

    #[test]
    fn size_classes_fit_requests() {
        // A recycled large buffer must not be served for a request it
        // fits, unless its class guarantees the capacity.
        let mut pool = PayloadPool::new(true);
        let mut big = pool.take(4096);
        big.extend_from_slice(&[0u8; 4096]);
        let big_cap = big.capacity();
        pool.recycle(Payload::recycled(big, true));
        let served = pool.take(2048);
        assert!(served.capacity() >= 2048);
        assert_eq!(served.capacity(), big_cap, "larger class serves smaller need");
    }

    #[test]
    fn class_boundaries() {
        assert_eq!(PayloadPool::class_for_take(0), 0);
        assert_eq!(PayloadPool::class_for_take(64), 0);
        assert_eq!(PayloadPool::class_for_take(65), 1);
        assert_eq!(PayloadPool::class_for_take(1 << 20), NUM_CLASSES - 1);
        assert_eq!(PayloadPool::class_for_put(64), 0);
        assert_eq!(PayloadPool::class_for_put(127), 0);
        assert_eq!(PayloadPool::class_for_put(128), 1);
        assert_eq!(PayloadPool::class_for_put(1 << 20), NUM_CLASSES - 1);
    }
}
