//! Determinism regression: the simulator is a pure function of its seed.
//!
//! WHISPER's evaluation (paper §V) is reproduced by replaying seeded
//! simulator runs, so two runs with the same seed must produce
//! **byte-identical** event traces — across processes, machines and
//! rebuilds. This test serializes everything observable about a run (every
//! message receipt with its timestamp and payload, every timer firing,
//! final metrics counters and per-node traffic) and compares the raw
//! bytes. If it ever breaks, something snuck a nondeterministic input into
//! the engine: OS entropy, hash-map iteration order, wall-clock time…
//! See `DESIGN.md` § "Determinism & randomness".

use whisper_net::nat::NatType;
use whisper_net::sched::Scheduler;
use whisper_net::sim::{Ctx, Protocol, Sim, SimConfig};
use whisper_net::{Endpoint, NodeId, Payload, SimDuration};
use whisper_rand::{Rng, RngCore};

/// A protocol that exercises every randomness source a real protocol
/// uses — random partner selection, random payload bytes, random timer
/// jitter — and appends every event it observes to a byte trace.
struct Chatter {
    peers: Vec<NodeId>,
    trace: Vec<u8>,
}

impl Chatter {
    fn log(&mut self, tag: u8, now_us: u64, detail: &[u8]) {
        self.trace.push(tag);
        self.trace.extend_from_slice(&now_us.to_le_bytes());
        self.trace.extend_from_slice(detail);
    }
}

impl Protocol for Chatter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let jitter = ctx.rng().gen_range(0..20_000u64);
        ctx.set_timer(SimDuration::from_micros(10_000 + jitter), 0);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, _ep: Endpoint, data: &Payload) {
        let now = ctx.now().as_micros();
        let mut detail = from.0.to_le_bytes().to_vec();
        detail.extend_from_slice(data);
        self.log(b'M', now, &detail);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let now = ctx.now().as_micros();
        self.log(b'T', now, &token.to_le_bytes());
        // Fire a random-length payload of random bytes at a random peer.
        let target = self.peers[ctx.rng().gen_range(0..self.peers.len())];
        let len = ctx.rng().gen_range(8..64usize);
        let mut payload = vec![0u8; len];
        ctx.rng().fill_bytes(&mut payload);
        ctx.send_to(Endpoint::public(target), payload);
        let jitter = ctx.rng().gen_range(0..30_000u64);
        ctx.set_timer(SimDuration::from_micros(20_000 + jitter), token + 1);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Runs a 16-node, 30-simulated-second chatter mesh on the PlanetLab
/// profile (latency jitter + loss, so engine randomness shapes delivery)
/// and returns the full serialized observable state.
fn run_trace(seed: u64) -> Vec<u8> {
    run_trace_sharded(seed, 1, false)
}

/// [`run_trace`] with an explicit shard count and thread policy, for the
/// shard-invariance matrix.
fn run_trace_sharded(seed: u64, shards: usize, threaded: bool) -> Vec<u8> {
    run_trace_configured(seed, shards, threaded, true)
}

/// [`run_trace_sharded`] with an explicit payload-pooling switch: like the
/// shard count, buffer recycling is a performance knob the trace must not
/// see (DESIGN.md §13).
fn run_trace_configured(seed: u64, shards: usize, threaded: bool, pooling: bool) -> Vec<u8> {
    run_trace_scheduled(seed, shards, threaded, pooling, Scheduler::Wheel)
}

/// [`run_trace_configured`] with an explicit event-queue scheduler: the
/// calendar queue and the reference heap must pop in identical canonical
/// key order, so the scheduler choice is a pure wall-clock knob
/// (DESIGN.md §14).
fn run_trace_scheduled(
    seed: u64,
    shards: usize,
    threaded: bool,
    pooling: bool,
    sched: Scheduler,
) -> Vec<u8> {
    // Profiling stays ON for the whole matrix: the wall-clock buckets it
    // gathers land only in the exempt `prof.*` counters, so the trace must
    // not change with the profiler running (DESIGN.md §16).
    let mut sim = Sim::new(
        SimConfig::planetlab(seed)
            .with_shards(shards)
            .with_threads(threaded)
            .with_pooling(pooling)
            .with_scheduler(sched)
            .with_profiling(true),
    );
    let peers: Vec<NodeId> = (0..16).map(NodeId).collect();
    for _ in 0..16u64 {
        // All nodes public so the chatter mesh is fully connected; the NAT
        // machinery has its own tests.
        sim.add_node(
            Box::new(Chatter { peers: peers.clone(), trace: Vec::new() }),
            NatType::Public,
        );
    }
    sim.run_for_secs(30);

    let mut out = Vec::new();
    for id in sim.node_ids() {
        let chatter = sim.node::<Chatter>(id).expect("chatter node");
        out.extend_from_slice(&id.0.to_le_bytes());
        out.extend_from_slice(&(chatter.trace.len() as u64).to_le_bytes());
        out.extend_from_slice(&chatter.trace);
    }
    // Engine-side observables: counters and per-node traffic (BTreeMap:
    // iteration order is defined).
    let metrics = sim.metrics();
    for (node, traffic) in metrics.traffic_snapshot() {
        out.extend_from_slice(&node.0.to_le_bytes());
        out.extend_from_slice(&traffic.up_msgs.to_le_bytes());
        out.extend_from_slice(&traffic.down_msgs.to_le_bytes());
        out.extend_from_slice(&traffic.up_bytes.to_le_bytes());
        out.extend_from_slice(&traffic.down_bytes.to_le_bytes());
    }
    out.extend_from_slice(&sim.now().as_micros().to_le_bytes());
    out
}

/// Two runs with the same seed are byte-identical.
#[test]
fn same_seed_is_byte_identical() {
    let a = run_trace(0x5748_5350); // "WHSP"
    let b = run_trace(0x5748_5350);
    assert_eq!(a.len(), b.len(), "trace lengths diverged");
    assert!(a == b, "same-seed traces are not byte-identical");
    assert!(!a.is_empty(), "trace must actually contain events");
}

/// A different seed produces a different trace (the engine actually uses
/// the seed).
#[test]
fn different_seed_differs() {
    assert_ne!(run_trace(1), run_trace(2), "seed does not influence the trace");
}

/// The determinism contract's strongest clause (DESIGN.md §12): the shard
/// count and thread policy are *performance knobs*, invisible to the
/// trace. For every seed in the matrix, the 2- and 4-shard runs —
/// sequential and threaded — must be byte-identical to the 1-shard run,
/// including every counter and per-node traffic figure.
#[test]
fn shard_count_is_invisible_to_the_trace() {
    for seed in [7u64, 11, 13] {
        let base = run_trace_sharded(seed, 1, false);
        assert!(!base.is_empty(), "seed {seed}: empty trace proves nothing");
        for shards in [2usize, 4] {
            let sharded = run_trace_sharded(seed, shards, false);
            assert!(
                base == sharded,
                "seed {seed}: {shards}-shard sequential trace diverged from 1-shard"
            );
        }
        let threaded = run_trace_sharded(seed, 4, true);
        assert!(
            base == threaded,
            "seed {seed}: 4-shard threaded trace diverged from 1-shard"
        );
    }
}

/// Payload pooling is a pure performance knob (DESIGN.md §13): recycling
/// buffers between events must never be observable. Pool-on and pool-off
/// runs — at one shard and at four — are byte-identical, including every
/// delivered payload byte captured in the chatter traces.
#[test]
fn pooling_is_invisible_to_the_trace() {
    for seed in [7u64, 11, 13] {
        let pooled = run_trace_configured(seed, 1, false, true);
        let unpooled = run_trace_configured(seed, 1, false, false);
        assert!(!pooled.is_empty(), "seed {seed}: empty trace proves nothing");
        assert!(
            pooled == unpooled,
            "seed {seed}: pool-off trace diverged from pool-on (buffer reuse leaked)"
        );
        let sharded_unpooled = run_trace_configured(seed, 4, true, false);
        assert!(
            pooled == sharded_unpooled,
            "seed {seed}: 4-shard pool-off trace diverged from 1-shard pool-on"
        );
    }
}

/// The tentpole clause of DESIGN.md §14: the hierarchical calendar queue
/// and the reference binary heap produce **byte-identical** traces for
/// every seed in the matrix, at 1, 2 and 4 shards, sequential and
/// threaded. Ties at the same instant, crash-deferral re-keys and
/// far-future timers must all pop in the same canonical key order from
/// either structure.
#[test]
fn scheduler_is_invisible_to_the_trace() {
    for seed in [7u64, 11, 13] {
        let base = run_trace_scheduled(seed, 1, false, true, Scheduler::Wheel);
        assert!(!base.is_empty(), "seed {seed}: empty trace proves nothing");
        for shards in [1usize, 2, 4] {
            assert!(
                base == run_trace_scheduled(seed, shards, false, true, Scheduler::Heap),
                "seed {seed}: heap {shards}-shard sequential trace diverged from wheel"
            );
            if shards > 1 {
                assert!(
                    base == run_trace_scheduled(seed, shards, false, true, Scheduler::Wheel),
                    "seed {seed}: wheel {shards}-shard sequential trace diverged"
                );
                assert!(
                    base == run_trace_scheduled(seed, shards, true, true, Scheduler::Heap),
                    "seed {seed}: heap {shards}-shard threaded trace diverged from wheel"
                );
                assert!(
                    base == run_trace_scheduled(seed, shards, true, true, Scheduler::Wheel),
                    "seed {seed}: wheel {shards}-shard threaded trace diverged"
                );
            }
        }
    }
}

/// Runs the full WHISPER stack — PSS warm-up, then WCL sends that
/// establish and then ride a cached circuit — and serializes every
/// deterministic observable: all counters, all sample series *except* the
/// wall-clock `*_wall_us` secondaries (the one sanctioned
/// host-dependent output; see DESIGN.md § "Deterministic crypto
/// accounting"), per-node traffic, and the final clock.
fn run_stack_trace(seed: u64) -> Vec<u8> {
    run_stack_trace_sharded(seed, 1)
}

/// [`run_stack_trace`] with an explicit shard count (auto thread policy),
/// proving the full crypto stack rides the contract too.
fn run_stack_trace_sharded(seed: u64, shards: usize) -> Vec<u8> {
    use whisper_core::{WhisperConfig, WhisperNode};
    use whisper_crypto::rsa::KeyPair;
    use whisper_rand::rngs::StdRng;
    use whisper_rand::SeedableRng;

    let cfg = WhisperConfig::default();
    assert!(cfg.wcl.circuits, "circuit amortization is on by default");
    let mut keyrng = StdRng::seed_from_u64(seed);
    let mut sim = Sim::new(SimConfig::cluster(seed).with_shards(shards).with_profiling(true));
    let mk = |boot: bool, keyrng: &mut StdRng| {
        let mut node = WhisperNode::new(cfg.clone(), KeyPair::generate(cfg.nylon.rsa, keyrng));
        if !boot {
            node.nylon_mut().set_bootstrap(vec![NodeId(0), NodeId(1)]);
        }
        node
    };
    let b0 = sim.add_node(Box::new(mk(true, &mut keyrng)), NatType::Public);
    let b1 = sim.add_node(Box::new(mk(true, &mut keyrng)), NatType::Public);
    sim.with_node_ctx::<WhisperNode>(b0, |n, _| n.nylon_mut().set_bootstrap(vec![b1]));
    sim.with_node_ctx::<WhisperNode>(b1, |n, _| n.nylon_mut().set_bootstrap(vec![b0]));
    for _ in 0..6 {
        sim.add_node(Box::new(mk(false, &mut keyrng)), NatType::Public);
    }
    let source = sim.add_node(Box::new(mk(false, &mut keyrng)), NatType::RestrictedCone);
    let dest = sim.add_node(Box::new(mk(false, &mut keyrng)), NatType::PortRestrictedCone);
    sim.run_for_secs(250);

    let mut dest_info = None;
    sim.with_node_ctx::<WhisperNode>(dest, |node, _| {
        node.with_api(|api, _| dest_info = Some(api.my_entry().dest_info()));
    });
    let dest_info = dest_info.expect("dest alive");
    // First send builds the RSA onion and installs the circuit; the rest
    // ride it, so the trace covers both packet formats.
    for i in 0..4u8 {
        sim.with_node_ctx::<WhisperNode>(source, |node, ctx| {
            node.with_api(|api, _| {
                api.wcl.send_untracked(ctx, api.nylon, &dest_info, &[b'p', i]);
            });
        });
        sim.run_for_secs(3);
    }

    let metrics = sim.metrics();
    assert!(metrics.counter("wcl.circuit_hit") >= 1, "steady-state path exercised");
    let mut out = Vec::new();
    // `net.pool_*` hit/miss statistics are shard-local by construction (a
    // buffer freed on shard i is only reusable there) and exempt from the
    // contract, exactly like the `*_wall_us` samples and the wall-clock
    // `prof.*` profiler buckets. DESIGN.md §13, §16.
    for name in metrics
        .counter_names()
        .filter(|n| !n.starts_with("net.pool_") && !n.starts_with("prof."))
    {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&metrics.counter(name).to_le_bytes());
    }
    for name in metrics.sample_names().filter(|n| !n.ends_with("_wall_us")) {
        out.extend_from_slice(name.as_bytes());
        for v in metrics.samples(name) {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    for (node, traffic) in metrics.traffic_snapshot() {
        out.extend_from_slice(&node.0.to_le_bytes());
        out.extend_from_slice(&traffic.up_msgs.to_le_bytes());
        out.extend_from_slice(&traffic.down_msgs.to_le_bytes());
        out.extend_from_slice(&traffic.up_bytes.to_le_bytes());
        out.extend_from_slice(&traffic.down_bytes.to_le_bytes());
    }
    out.extend_from_slice(&sim.now().as_micros().to_le_bytes());
    out
}

/// Two same-seed full-stack runs with circuits enabled are byte-identical
/// — the circuit tables, eviction order, nonce chains and crypto-cost
/// model all feed only from the seed.
#[test]
fn full_stack_with_circuits_is_byte_identical() {
    let a = run_stack_trace(0xC1AC_0137);
    let b = run_stack_trace(0xC1AC_0137);
    assert_eq!(a.len(), b.len(), "stack trace lengths diverged");
    assert!(a == b, "same-seed circuit-enabled runs are not byte-identical");
}

/// The full stack — PSS, Nylon, WCL circuits, the crypto cost model —
/// produces the same bytes whether the engine runs 1 shard or 4.
#[test]
fn full_stack_is_shard_invariant() {
    let a = run_stack_trace_sharded(0xC1AC_0137, 1);
    let b = run_stack_trace_sharded(0xC1AC_0137, 4);
    assert!(a == b, "4-shard full-stack trace diverged from 1-shard");
}

/// Runs the chatter mesh under a scripted [`FaultPlan`] covering every
/// fault type — partition, Gilbert–Elliott burst loss, latency spike,
/// crash-and-restart, NAT rebinding — and serializes the observable
/// state. Fault decisions (burst-chain transitions, drop attribution,
/// deferred-timer ordering across a restart) all draw from the engine
/// RNG, so they must replay byte-for-byte.
fn run_fault_trace(seed: u64) -> Vec<u8> {
    run_fault_trace_sharded(seed, 1)
}

/// [`run_fault_trace`] with an explicit shard count (auto thread policy):
/// crash/restart deferral, burst chains and drop attribution are applied
/// shard-locally and must not leak the partitioning.
fn run_fault_trace_sharded(seed: u64, shards: usize) -> Vec<u8> {
    use whisper_net::fault::{FaultPlan, GilbertElliott};
    use whisper_net::SimTime;

    let mut sim = Sim::new(SimConfig::planetlab(seed).with_shards(shards));
    let peers: Vec<NodeId> = (0..16).map(NodeId).collect();
    for _ in 0..16u64 {
        sim.add_node(
            Box::new(Chatter { peers: peers.clone(), trace: Vec::new() }),
            NatType::Public,
        );
    }
    // One NATted talker (in nobody's peer list, so all its traffic is
    // outbound) to give the rebind fault a binding table to clear.
    let natted = sim.add_node(
        Box::new(Chatter { peers: peers.clone(), trace: Vec::new() }),
        NatType::RestrictedCone,
    );

    let at = |s: u64| SimTime::from_micros(s * 1_000_000);
    let plan = FaultPlan::new()
        .partition([NodeId(2), NodeId(3)], at(4), at(9))
        .burst_loss(at(10), at(15), GilbertElliott::heavy())
        .latency_spike(at(16), at(20), 10)
        .crash_restart(NodeId(5), at(21), at(25))
        .nat_rebind(natted, at(26));
    sim.install_fault_plan(plan);
    sim.run_for_secs(30);

    for fired in [
        "net.drop_partition",
        "net.lost_burst",
        "net.fault_crash",
        "net.fault_restart",
        "net.fault_nat_rebind",
    ] {
        assert!(sim.metrics().counter(fired) > 0, "{fired} never fired");
    }

    let mut out = Vec::new();
    for id in sim.node_ids() {
        let chatter = sim.node::<Chatter>(id).expect("chatter node");
        out.extend_from_slice(&id.0.to_le_bytes());
        out.extend_from_slice(&(chatter.trace.len() as u64).to_le_bytes());
        out.extend_from_slice(&chatter.trace);
    }
    let metrics = sim.metrics();
    // Same `net.pool_*` / `prof.*` exemptions as the full-stack trace
    // (DESIGN.md §13, §16).
    for name in metrics
        .counter_names()
        .filter(|n| !n.starts_with("net.pool_") && !n.starts_with("prof."))
    {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&metrics.counter(name).to_le_bytes());
    }
    for (node, traffic) in metrics.traffic_snapshot() {
        out.extend_from_slice(&node.0.to_le_bytes());
        out.extend_from_slice(&traffic.up_msgs.to_le_bytes());
        out.extend_from_slice(&traffic.down_msgs.to_le_bytes());
    }
    out.extend_from_slice(&sim.now().as_micros().to_le_bytes());
    out
}

/// Two same-seed runs under a full fault plan are byte-identical, and
/// every scripted fault actually fired (otherwise the trace proves
/// nothing about the fault paths).
#[test]
fn fault_plan_run_is_byte_identical() {
    let a = run_fault_trace(0xFA_017);
    let b = run_fault_trace(0xFA_017);
    assert_eq!(a.len(), b.len(), "fault-plan trace lengths diverged");
    assert!(a == b, "same-seed fault-plan runs are not byte-identical");
    assert_ne!(
        run_fault_trace(0xFA_017),
        run_fault_trace(0xFA_018),
        "seed does not influence the fault-plan trace"
    );
}

/// Every fault type fires identically whether the victims share a shard
/// or are spread across four.
#[test]
fn fault_plan_is_shard_invariant() {
    for seed in [7u64, 11, 13] {
        let base = run_fault_trace_sharded(seed, 1);
        for shards in [2usize, 4] {
            assert!(
                base == run_fault_trace_sharded(seed, shards),
                "seed {seed}: {shards}-shard fault-plan trace diverged from 1-shard"
            );
        }
    }
}
