//! Engine-semantics tests: ordering, loss accounting, churn-runner
//! integration with the latency profiles, and determinism across
//! heterogeneous configurations.

use whisper_net::nat::NatType;
use whisper_net::sim::{Ctx, Protocol, Sim, SimConfig};
use whisper_net::{Endpoint, NodeId, SimDuration, SimTime};

/// Records every delivery with its arrival time.
struct Recorder {
    received: Vec<(SimTime, NodeId, Vec<u8>)>,
}

impl Protocol for Recorder {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, _ep: Endpoint, data: &[u8]) {
        self.received.push((ctx.now(), from, data.to_vec()));
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Sends a burst of numbered messages at start.
struct Burst {
    target: NodeId,
    count: u32,
}

impl Protocol for Burst {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.count {
            ctx.send_to(Endpoint::public(self.target), i.to_be_bytes().to_vec());
        }
    }
    fn on_message(&mut self, _: &mut Ctx<'_>, _: NodeId, _: Endpoint, _: &[u8]) {}
    fn on_timer(&mut self, _: &mut Ctx<'_>, _: u64) {}
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[test]
fn deliveries_are_time_ordered() {
    let mut sim = Sim::new(SimConfig::planetlab(1));
    let sink = sim.add_node(Box::new(Recorder { received: Vec::new() }), NatType::Public);
    sim.add_node(Box::new(Burst { target: sink, count: 200 }), NatType::Public);
    sim.run_for_secs(30);
    let rec: &Recorder = sim.node(sink).unwrap();
    assert!(!rec.received.is_empty());
    // Arrival times are monotone in processing order even though the
    // heavy-tailed latency model reorders messages relative to sending.
    for w in rec.received.windows(2) {
        assert!(w[0].0 <= w[1].0, "event times went backwards");
    }
    // The heavy tail actually reordered something (messages were sent in
    // sequence; payloads arriving out of numeric order prove reordering).
    let payloads: Vec<u32> = rec
        .received
        .iter()
        .map(|(_, _, d)| u32::from_be_bytes(d.as_slice().try_into().unwrap()))
        .collect();
    assert!(
        payloads.windows(2).any(|w| w[0] > w[1]),
        "PlanetLab latencies should reorder a 200-message burst"
    );
}

#[test]
fn loss_rate_matches_profile() {
    let mut sim = Sim::new(SimConfig::planetlab(2)); // 2% loss
    let sink = sim.add_node(Box::new(Recorder { received: Vec::new() }), NatType::Public);
    sim.add_node(Box::new(Burst { target: sink, count: 5000 }), NatType::Public);
    sim.run_for_secs(60);
    let rec: &Recorder = sim.node(sink).unwrap();
    let delivered = rec.received.len();
    let lost = sim.metrics().counter("net.lost");
    assert_eq!(delivered as u64 + lost, 5000);
    let rate = lost as f64 / 5000.0;
    assert!((rate - 0.02).abs() < 0.01, "loss rate {rate}");
}

#[test]
fn cluster_profile_is_lossless() {
    let mut sim = Sim::new(SimConfig::cluster(3));
    let sink = sim.add_node(Box::new(Recorder { received: Vec::new() }), NatType::Public);
    sim.add_node(Box::new(Burst { target: sink, count: 2000 }), NatType::Public);
    sim.run_for_secs(60);
    let rec: &Recorder = sim.node(sink).unwrap();
    assert_eq!(rec.received.len(), 2000);
    assert_eq!(sim.metrics().counter("net.lost"), 0);
}

#[test]
fn removing_receiver_mid_flight_drops_cleanly() {
    let mut sim = Sim::new(SimConfig::planetlab(4));
    let sink = sim.add_node(Box::new(Recorder { received: Vec::new() }), NatType::Public);
    sim.add_node(Box::new(Burst { target: sink, count: 100 }), NatType::Public);
    // Kill the sink while messages are still in flight.
    sim.run_for(SimDuration::from_millis(10));
    sim.remove_node(sink);
    sim.run_for_secs(30);
    // Nothing panicked; undeliverable messages were counted.
    assert!(sim.metrics().counter("net.drop_dead_target") > 0);
}

#[test]
fn node_ids_are_never_reused() {
    let mut sim = Sim::new(SimConfig::ideal(5));
    let a = sim.add_node(Box::new(Recorder { received: Vec::new() }), NatType::Public);
    sim.remove_node(a);
    let b = sim.add_node(Box::new(Recorder { received: Vec::new() }), NatType::Public);
    assert_ne!(a, b, "ids are unique across the whole run");
    assert!(b > a);
}

#[test]
fn identical_seeds_replay_identical_arrival_times() {
    fn arrivals(seed: u64) -> Vec<u64> {
        let mut sim = Sim::new(SimConfig::planetlab(seed));
        let sink = sim.add_node(Box::new(Recorder { received: Vec::new() }), NatType::Public);
        sim.add_node(Box::new(Burst { target: sink, count: 50 }), NatType::Public);
        sim.run_for_secs(30);
        let rec: &Recorder = sim.node(sink).unwrap();
        rec.received.iter().map(|(t, _, _)| t.as_micros()).collect()
    }
    assert_eq!(arrivals(42), arrivals(42));
    assert_ne!(arrivals(42), arrivals(43), "different seeds differ");
}
