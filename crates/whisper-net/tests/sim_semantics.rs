//! Engine-semantics tests: ordering, loss accounting, churn-runner
//! integration with the latency profiles, and determinism across
//! heterogeneous configurations.

use whisper_net::nat::NatType;
use whisper_net::sim::{Ctx, Protocol, Sim, SimConfig};
use whisper_net::{Endpoint, NodeId, Payload, SimDuration, SimTime};

/// Records every delivery with its arrival time.
struct Recorder {
    received: Vec<(SimTime, NodeId, Vec<u8>)>,
}

impl Protocol for Recorder {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, _ep: Endpoint, data: &Payload) {
        self.received.push((ctx.now(), from, data.to_vec()));
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Sends a burst of numbered messages at start.
struct Burst {
    target: NodeId,
    count: u32,
}

impl Protocol for Burst {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.count {
            ctx.send_to(Endpoint::public(self.target), i.to_be_bytes().to_vec());
        }
    }
    fn on_message(&mut self, _: &mut Ctx<'_>, _: NodeId, _: Endpoint, _: &Payload) {}
    fn on_timer(&mut self, _: &mut Ctx<'_>, _: u64) {}
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[test]
fn deliveries_are_time_ordered() {
    let mut sim = Sim::new(SimConfig::planetlab(1));
    let sink = sim.add_node(Box::new(Recorder { received: Vec::new() }), NatType::Public);
    sim.add_node(Box::new(Burst { target: sink, count: 200 }), NatType::Public);
    sim.run_for_secs(30);
    let rec: &Recorder = sim.node(sink).unwrap();
    assert!(!rec.received.is_empty());
    // Arrival times are monotone in processing order even though the
    // heavy-tailed latency model reorders messages relative to sending.
    for w in rec.received.windows(2) {
        assert!(w[0].0 <= w[1].0, "event times went backwards");
    }
    // The heavy tail actually reordered something (messages were sent in
    // sequence; payloads arriving out of numeric order prove reordering).
    let payloads: Vec<u32> = rec
        .received
        .iter()
        .map(|(_, _, d)| u32::from_be_bytes(d.as_slice().try_into().unwrap()))
        .collect();
    assert!(
        payloads.windows(2).any(|w| w[0] > w[1]),
        "PlanetLab latencies should reorder a 200-message burst"
    );
}

#[test]
fn loss_rate_matches_profile() {
    let mut sim = Sim::new(SimConfig::planetlab(2)); // 2% loss
    let sink = sim.add_node(Box::new(Recorder { received: Vec::new() }), NatType::Public);
    sim.add_node(Box::new(Burst { target: sink, count: 5000 }), NatType::Public);
    sim.run_for_secs(60);
    let rec: &Recorder = sim.node(sink).unwrap();
    let delivered = rec.received.len();
    let lost = sim.metrics().counter("net.lost");
    assert_eq!(delivered as u64 + lost, 5000);
    let rate = lost as f64 / 5000.0;
    assert!((rate - 0.02).abs() < 0.01, "loss rate {rate}");
}

#[test]
fn cluster_profile_is_lossless() {
    let mut sim = Sim::new(SimConfig::cluster(3));
    let sink = sim.add_node(Box::new(Recorder { received: Vec::new() }), NatType::Public);
    sim.add_node(Box::new(Burst { target: sink, count: 2000 }), NatType::Public);
    sim.run_for_secs(60);
    let rec: &Recorder = sim.node(sink).unwrap();
    assert_eq!(rec.received.len(), 2000);
    assert_eq!(sim.metrics().counter("net.lost"), 0);
}

#[test]
fn removing_receiver_mid_flight_drops_cleanly() {
    let mut sim = Sim::new(SimConfig::planetlab(4));
    let sink = sim.add_node(Box::new(Recorder { received: Vec::new() }), NatType::Public);
    sim.add_node(Box::new(Burst { target: sink, count: 100 }), NatType::Public);
    // Kill the sink while messages are still in flight.
    sim.run_for(SimDuration::from_millis(10));
    sim.remove_node(sink);
    sim.run_for_secs(30);
    // Nothing panicked; undeliverable messages were counted.
    assert!(sim.metrics().counter("net.drop_dead_target") > 0);
}

/// Removal while deliveries are in flight must keep the accounting
/// identity exact and stay O(1): the removed node's queued messages are
/// attributed to `net.drop_dead_target` when they surface, and the
/// engine's incremental in-flight counter never drifts — including when
/// the removed node lives on a non-zero shard.
#[test]
fn removal_during_in_flight_delivery_keeps_accounting_exact() {
    for shards in [1usize, 4] {
        let mut sim = Sim::new(SimConfig::planetlab(6).with_shards(shards).with_threads(false));
        let sink = sim.add_node(Box::new(Recorder { received: Vec::new() }), NatType::Public);
        sim.add_node(Box::new(Burst { target: sink, count: 300 }), NatType::Public);
        sim.run_for(SimDuration::from_millis(20));
        let in_flight_before = sim.in_flight_msgs();
        assert!(in_flight_before > 0, "burst must still be in flight");
        sim.remove_node(sink);
        assert!(!sim.contains(sink), "removed node is gone");
        assert!(!sim.is_down(sink), "removed is distinct from crashed");
        assert_eq!(
            sim.in_flight_msgs(),
            in_flight_before,
            "removal must not forget queued deliveries ({shards} shards)"
        );
        sim.run_for_secs(60);
        let m = sim.metrics();
        let delivered: u64 = m
            .traffic_snapshot()
            .values()
            .map(|t| t.down_msgs)
            .sum();
        assert_eq!(sim.in_flight_msgs(), 0, "everything drained");
        assert_eq!(
            delivered + m.counter("net.drop_dead_target") + m.counter("net.lost"),
            300,
            "every send delivered, dropped-dead, or lost ({shards} shards)"
        );
        assert!(m.counter("net.drop_dead_target") > 0);
    }
}

#[test]
fn node_ids_are_never_reused() {
    let mut sim = Sim::new(SimConfig::ideal(5));
    let a = sim.add_node(Box::new(Recorder { received: Vec::new() }), NatType::Public);
    sim.remove_node(a);
    let b = sim.add_node(Box::new(Recorder { received: Vec::new() }), NatType::Public);
    assert_ne!(a, b, "ids are unique across the whole run");
    assert!(b > a);
}

#[test]
fn identical_seeds_replay_identical_arrival_times() {
    fn arrivals(seed: u64) -> Vec<u64> {
        let mut sim = Sim::new(SimConfig::planetlab(seed));
        let sink = sim.add_node(Box::new(Recorder { received: Vec::new() }), NatType::Public);
        sim.add_node(Box::new(Burst { target: sink, count: 50 }), NatType::Public);
        sim.run_for_secs(30);
        let rec: &Recorder = sim.node(sink).unwrap();
        rec.received.iter().map(|(t, _, _)| t.as_micros()).collect()
    }
    assert_eq!(arrivals(42), arrivals(42));
    assert_ne!(arrivals(42), arrivals(43), "different seeds differ");
}

/// Sends one message to `target` every 100 ms, forever.
struct Ticker {
    target: NodeId,
    sent: u64,
}

impl Protocol for Ticker {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_millis(100), 0);
    }
    fn on_message(&mut self, _: &mut Ctx<'_>, _: NodeId, _: Endpoint, _: &Payload) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        ctx.send_to(Endpoint::public(self.target), vec![0xAB]);
        self.sent += 1;
        ctx.set_timer(SimDuration::from_millis(100), 0);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Like [`Ticker`] but sends through the pooled wire-encode path, the way
/// real protocols do — this is the hot path the buffer pool serves.
struct WireTicker {
    target: NodeId,
}

impl Protocol for WireTicker {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_millis(50), 0);
    }
    fn on_message(&mut self, _: &mut Ctx<'_>, _: NodeId, _: Endpoint, _: &Payload) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        ctx.send_wire(Endpoint::public(self.target), &0xABAB_CDCD_u64);
        ctx.set_timer(SimDuration::from_millis(50), 0);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The tentpole claim, asserted deterministically: with pooling on, the
/// engine's honest heap-allocation figure (`net.allocs` for fresh
/// payloads plus `net.pool_misses` for pool refills) collapses to a
/// handful of warm-up allocations, while the delivered traffic is
/// unchanged. Pool-off is the PR 6 baseline: one allocation per send.
#[test]
fn pooling_slashes_allocations_per_event() {
    fn run(pooling: bool) -> (u64, u64, (u64, u64)) {
        let mut sim = Sim::new(SimConfig::cluster(21).with_pooling(pooling));
        let sink = sim.add_node(Box::new(Recorder { received: Vec::new() }), NatType::Public);
        for _ in 0..8 {
            sim.add_node(Box::new(WireTicker { target: sink }), NatType::Public);
        }
        sim.run_for_secs(30);
        let m = sim.metrics();
        let allocs = m.counter("net.allocs") + m.counter("net.pool_misses");
        let bytes = m.counter("net.alloc_bytes") + m.counter("net.pool_miss_bytes");
        (allocs, bytes, traffic_totals(&sim))
    }
    let (allocs_on, bytes_on, traffic_on) = run(true);
    let (allocs_off, bytes_off, traffic_off) = run(false);
    assert_eq!(traffic_on, traffic_off, "pooling must not change delivery");
    let (sent, delivered) = traffic_off;
    assert!(delivered > 4000, "workload too small to mean anything");
    // Every pool-off send allocates; pool-on steady state recycles the
    // delivery's buffer before the next send needs one.
    assert_eq!(allocs_off, sent, "pool-off baseline is one alloc per send");
    assert!(
        allocs_on * 5 <= allocs_off,
        "pooling must cut allocations ≥5×: {allocs_on} vs {allocs_off}"
    );
    assert!(
        bytes_on * 5 <= bytes_off,
        "pooling must cut allocated bytes ≥5×: {bytes_on} vs {bytes_off}"
    );
}

/// Cross-shard exchange batches are recycled through a shared spare-vector
/// pool: the threaded engine draws fresh vectors only while the pool warms
/// up (`net.pool_exchange_fresh`), then reuses them forever. The sequential
/// path swaps batches in place and cannot allocate by construction, so the
/// threaded path is the one worth pinning down.
#[test]
fn steady_state_exchange_allocations_are_zero() {
    let mut sim = Sim::new(
        SimConfig::cluster(33)
            .with_shards(4)
            .with_threads(true) // force the pooled path even on 1 CPU
            .with_expected_nodes(16),
    );
    let sink = sim.add_node(Box::new(Recorder { received: Vec::new() }), NatType::Public);
    for _ in 0..12 {
        sim.add_node(Box::new(Ticker { target: sink, sent: 0 }), NatType::Public);
    }
    sim.run_for_secs(10);
    let warm = sim.metrics().counter("net.pool_exchange_fresh");
    assert!(warm > 0, "threaded exchange must draw fresh vectors during warm-up");
    let (_, delivered_warm) = traffic_totals(&sim);
    sim.run_for_secs(60);
    let steady = sim.metrics().counter("net.pool_exchange_fresh");
    let (_, delivered) = traffic_totals(&sim);
    assert!(delivered > delivered_warm, "measurement epoch must carry traffic");
    assert_eq!(
        steady, warm,
        "steady-state cross-shard exchange must recycle batches, not allocate"
    );
}

/// Sum of all per-node up / down message counts.
fn traffic_totals(sim: &Sim) -> (u64, u64) {
    let t = sim.metrics().traffic_snapshot();
    (
        t.values().map(|t| t.up_msgs).sum(),
        t.values().map(|t| t.down_msgs).sum(),
    )
}

/// Every send must end up delivered, attributed to a *named* drop
/// counter, or still in flight — even with every fault class active at
/// once. This is the accounting identity the chaos suite relies on.
#[test]
fn every_sim_drop_has_a_named_counter() {
    use whisper_net::fault::{FaultPlan, GilbertElliott};
    let mut sim = Sim::new(SimConfig::planetlab(11)); // 2% base loss
    let sink = sim.add_node(Box::new(Recorder { received: Vec::new() }), NatType::Public);
    let a = sim.add_node(Box::new(Ticker { target: sink, sent: 0 }), NatType::Public);
    let b = sim.add_node(Box::new(Ticker { target: sink, sent: 0 }), NatType::Public);
    let at = |s: u64| SimTime::from_micros(s * 1_000_000);
    sim.install_fault_plan(
        FaultPlan::new()
            .partition([a], at(5), at(10))
            .burst_loss(at(12), at(18), GilbertElliott::heavy())
            .latency_spike(at(20), at(25), 10)
            .crash_restart(sink, at(27), at(33))
            .nat_rebind(b, at(35)),
    );
    sim.run_for_secs(60);
    let m = sim.metrics();
    // Each fault class left its mark under its own counter.
    for name in [
        "net.lost",
        "net.lost_burst",
        "net.drop_partition",
        "net.drop_crashed",
        "net.delay_spiked",
        "net.fault_crash",
        "net.fault_restart",
        "net.fault_nat_rebind",
    ] {
        assert!(m.counter(name) > 0, "expected {name} > 0");
    }
    let (up, down) = traffic_totals(&sim);
    let drops = m.counter("net.lost")
        + m.counter("net.lost_burst")
        + m.counter("net.drop_partition")
        + m.counter("net.drop_crashed")
        + m.counter("net.drop_dead_target")
        + m.counter("net.nat_blocked")
        + m.counter("net.drop_sender_gone");
    assert_eq!(
        up,
        down + drops + sim.in_flight_msgs(),
        "a message vanished without attribution"
    );
}

/// Partition drops and crash drops are distinct causes: a send across the
/// cut is `net.drop_partition`, a send to a down-but-coming-back node is
/// `net.drop_crashed`, and a send to a removed node is
/// `net.drop_dead_target`.
#[test]
fn drop_causes_are_not_conflated() {
    use whisper_net::fault::FaultPlan;
    let mut sim = Sim::new(SimConfig::cluster(12)); // lossless base
    let sink = sim.add_node(Box::new(Recorder { received: Vec::new() }), NatType::Public);
    let gone = sim.add_node(Box::new(Recorder { received: Vec::new() }), NatType::Public);
    sim.add_node(Box::new(Ticker { target: sink, sent: 0 }), NatType::Public);
    sim.add_node(Box::new(Ticker { target: gone, sent: 0 }), NatType::Public);
    let at = |s: u64| SimTime::from_micros(s * 1_000_000);
    sim.install_fault_plan(
        FaultPlan::new()
            .partition([sink], at(5), at(10))
            .crash_restart(sink, at(15), at(20)),
    );
    sim.run_for_secs(12);
    sim.remove_node(gone);
    sim.run_for_secs(18);
    let m = sim.metrics();
    assert!(m.counter("net.drop_partition") > 0);
    assert!(m.counter("net.drop_crashed") > 0);
    assert!(m.counter("net.drop_dead_target") > 0);
    assert_eq!(m.counter("net.lost"), 0, "cluster profile is lossless");
    assert_eq!(m.counter("net.lost_burst"), 0, "no burst window installed");
    // The sink survived its crash: deliveries resumed after restart.
    let rec: &Recorder = sim.node(sink).unwrap();
    assert!(
        rec.received.iter().any(|(t, _, _)| *t >= at(20)),
        "deliveries should resume after the restart"
    );
    assert!(
        !rec.received.iter().any(|(t, _, _)| *t >= at(15) && *t < at(20)),
        "no delivery may reach a crashed node"
    );
}
