//! Property-based tests for the network substrate: wire-codec round
//! trips and fuzzed decoding, NAT filter laws, CDF invariants.
//!
//! Written against `whisper_rand::check`: seeded case generation with
//! shrink-on-failure reporting.

use whisper_net::nat::{NatDevice, NatType};
use whisper_net::sched::{EventKey, EventQueue, Keyed, Scheduler};
use whisper_net::stats::Cdf;
use whisper_net::wire::{WireDecode, WireEncode, WireReader, WireWriter};
use whisper_net::{Endpoint, NodeId, SimDuration, SimTime};
use whisper_rand::check::check;
use whisper_rand::Rng;

#[test]
fn primitives_round_trip() {
    check(128, "primitives_round_trip", |g| {
        let a: u8 = g.gen();
        let b: u16 = g.gen();
        let c: u32 = g.gen();
        let d: u64 = g.gen();
        let bytes = g.bytes(99);
        let mut w = WireWriter::new();
        w.put_u8(a);
        w.put_u16(b);
        w.put_u32(c);
        w.put_u64(d);
        w.put_bytes(&bytes);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.take_u8().unwrap(), a);
        assert_eq!(r.take_u16().unwrap(), b);
        assert_eq!(r.take_u32().unwrap(), c);
        assert_eq!(r.take_u64().unwrap(), d);
        assert_eq!(r.take_bytes().unwrap(), &bytes[..]);
        assert!(r.finish().is_ok());
    });
}

#[test]
fn sequences_round_trip() {
    check(128, "sequences_round_trip", |g| {
        let items = g.vec(49, |g| g.gen::<u64>());
        let mut w = WireWriter::new();
        w.put_seq(&items);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.take_seq::<u64>().unwrap(), items);
    });
}

#[test]
fn decoding_garbage_never_panics() {
    check(128, "decoding_garbage_never_panics", |g| {
        let bytes = g.bytes(199);
        // All decoders must be total: Err on junk, never panic.
        let mut r = WireReader::new(&bytes);
        let _ = r.take_seq::<u64>();
        let _ = Endpoint::from_wire(&bytes);
        let _ = NodeId::from_wire(&bytes);
        let _ = bool::from_wire(&bytes);
        let _ = Vec::<u8>::from_wire(&bytes);
    });
}

#[test]
fn endpoint_round_trip() {
    check(128, "endpoint_round_trip", |g| {
        let ep = Endpoint { node: NodeId(g.gen()), port: g.gen() };
        assert_eq!(Endpoint::from_wire(&ep.to_wire()).unwrap(), ep);
    });
}

/// Reply-to-sender always works while the association lives, for
/// every NAT type: if a device lets a packet OUT to `dst`, a packet
/// back IN from exactly `dst` to the allocated port passes.
#[test]
fn reply_to_sender_always_traverses() {
    check(128, "reply_to_sender_always_traverses", |g| {
        let nat = NatType::NATTED[g.gen_range(0..4usize)];
        let dst = Endpoint { node: NodeId(g.gen()), port: g.gen() };
        let delay_s = g.gen_range(0..7000u64);
        let mut dev = NatDevice::new(nat);
        let lease = SimDuration::from_secs(7200);
        let t0 = SimTime::ZERO;
        let port = dev.outbound(dst, t0, lease);
        let later = t0 + SimDuration::from_secs(delay_s);
        assert!(dev.inbound(port, dst, later), "{nat:?} blocked a reply");
    });
}

/// No NAT type accepts unsolicited traffic to a never-allocated port.
#[test]
fn unsolicited_port_always_blocked() {
    check(128, "unsolicited_port_always_blocked", |g| {
        let nat = NatType::NATTED[g.gen_range(0..4usize)];
        let src: u64 = g.gen();
        let port = g.gen_range(1..u16::MAX);
        let mut dev = NatDevice::new(nat);
        let source = Endpoint { node: NodeId(src), port: 1 };
        let accepted = dev.inbound(port, source, SimTime::ZERO);
        assert!(!accepted);
    });
}

#[test]
fn cdf_percentiles_are_monotone_and_bounded() {
    check(128, "cdf_percentiles_are_monotone_and_bounded", |g| {
        let mut samples = g.vec(198, |g| g.gen_range(-1e9..1e9f64));
        samples.push(g.gen_range(-1e9..1e9f64)); // at least one sample
        let mut c = Cdf::from_samples(samples.iter().copied());
        let lo = c.min();
        let hi = c.max();
        let mut last = lo;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = c.percentile(p);
            assert!(v >= last && v >= lo && v <= hi, "p{p}: {v}");
            last = v;
        }
        let mean = c.mean();
        assert!(mean >= lo && mean <= hi);
    });
}

#[test]
fn cdf_fraction_below_is_monotone() {
    check(128, "cdf_fraction_below_is_monotone", |g| {
        let mut samples = g.vec(99, |g| g.gen_range(0.0..1000.0f64));
        samples.push(g.gen_range(0.0..1000.0f64)); // 1..=100 samples
        let mut probes = g.vec(8, |g| g.gen_range(0.0..1000.0f64));
        probes.push(g.gen_range(0.0..1000.0f64));
        probes.push(g.gen_range(0.0..1000.0f64)); // 2..=10 probes
        let mut c = Cdf::from_samples(samples);
        probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = 0.0;
        for p in probes {
            let f = c.fraction_below(p);
            assert!((0.0..=1.0).contains(&f));
            assert!(f >= last);
            last = f;
        }
    });
}

/// A bare event key, for driving the schedulers without a full [`Event`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Item(u64, u64, u64);

impl Keyed for Item {
    fn key(&self) -> EventKey {
        (self.0, self.1, self.2)
    }
}

/// The scheduler-equivalence law behind the determinism contract
/// (DESIGN.md §14): a randomized stream of pushes, pops and peeks —
/// same-key-prefix ties, crash-deferral re-keys (same `(src, seq)`
/// pushed again at a later time), and far-future timers that land in
/// the calendar queue's overflow tier and must be promoted on idle
/// jumps — produces byte-identical pop/peek sequences from the
/// hierarchical calendar queue and the reference binary heap.
#[test]
fn calendar_queue_matches_reference_heap() {
    check(96, "calendar_queue_matches_reference_heap", |g| {
        let mut heap = EventQueue::new(Scheduler::Heap);
        let mut wheel = EventQueue::new(Scheduler::Wheel);
        wheel.reserve(64); // exercise the pre-reserve path too
        let mut now = 0u64; // time of the last pop; pushes never precede it
        let mut seq = 0u64;
        let mut ats: Vec<u64> = vec![0]; // previously used times, for exact ties
        let push = |heap: &mut EventQueue<Item>,
                        wheel: &mut EventQueue<Item>,
                        ats: &mut Vec<u64>,
                        at: u64,
                        src: u64,
                        seq: u64| {
            ats.push(at);
            heap.push(Item(at, src, seq));
            wheel.push(Item(at, src, seq));
        };
        for _ in 0..g.gen_range(1..=160usize) {
            match g.gen_range(0..10u32) {
                // Near-cursor push: short offsets cover same-granule
                // (`at >> 8` collision) ordering inside one L0 bucket;
                // exact reuse of an earlier `at` covers full `(at, src,
                // seq)` tie-breaking.
                0..=3 => {
                    let at = if g.gen_range(0..4u32) == 0 {
                        let reused = ats[g.gen_range(0..ats.len())];
                        reused.max(now)
                    } else {
                        now + g.gen_range(0..5_000u64)
                    };
                    let src = g.gen_range(0..4u64);
                    seq += 1;
                    push(&mut heap, &mut wheel, &mut ats, at, src, seq);
                }
                // Mid-range push: lands in the L1 day wheel.
                4..=5 => {
                    let at = now + g.gen_range(1 << 18..1 << 26);
                    seq += 1;
                    push(&mut heap, &mut wheel, &mut ats, at, 1, seq);
                }
                // Far-future push: beyond the L1 span, into the overflow
                // heap; later pops force promotion across tiers.
                6 => {
                    let at = now + (1u64 << 28) + g.gen_range(0..1 << 30);
                    seq += 1;
                    push(&mut heap, &mut wheel, &mut ats, at, 2, seq);
                }
                // Pop from both; keys (and lengths) must agree at every
                // step. A popped timer is occasionally re-armed later
                // with the *same* `(src, seq)` — the engine's
                // crash-deferral re-key.
                _ => {
                    assert_eq!(heap.peek_key(), wheel.peek_key());
                    let (h, w) = (heap.pop(), wheel.pop());
                    assert_eq!(h, w, "pop order diverged");
                    assert_eq!(heap.len(), wheel.len());
                    if let Some(item) = h {
                        now = item.0;
                        if g.gen_range(0..3u32) == 0 {
                            let at = now + g.gen_range(1..100_000u64);
                            push(&mut heap, &mut wheel, &mut ats, at, item.1, item.2);
                        }
                    }
                }
            }
        }
        // Drain: every remaining item must come out in the same order.
        loop {
            assert_eq!(heap.peek_key(), wheel.peek_key());
            let (h, w) = (heap.pop(), wheel.pop());
            assert_eq!(h, w, "drain order diverged");
            if h.is_none() {
                break;
            }
        }
        assert!(heap.is_empty() && wheel.is_empty());
    });
}
