//! Property-based tests for the network substrate: wire-codec round
//! trips and fuzzed decoding, NAT filter laws, CDF invariants.

use proptest::prelude::*;
use whisper_net::nat::{NatDevice, NatType};
use whisper_net::stats::Cdf;
use whisper_net::wire::{WireDecode, WireEncode, WireReader, WireWriter};
use whisper_net::{Endpoint, NodeId, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn primitives_round_trip(a in any::<u8>(), b in any::<u16>(), c in any::<u32>(), d in any::<u64>(), bytes in proptest::collection::vec(any::<u8>(), 0..100)) {
        let mut w = WireWriter::new();
        w.put_u8(a);
        w.put_u16(b);
        w.put_u32(c);
        w.put_u64(d);
        w.put_bytes(&bytes);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        prop_assert_eq!(r.take_u8().unwrap(), a);
        prop_assert_eq!(r.take_u16().unwrap(), b);
        prop_assert_eq!(r.take_u32().unwrap(), c);
        prop_assert_eq!(r.take_u64().unwrap(), d);
        prop_assert_eq!(r.take_bytes().unwrap(), &bytes[..]);
        prop_assert!(r.finish().is_ok());
    }

    #[test]
    fn sequences_round_trip(items in proptest::collection::vec(any::<u64>(), 0..50)) {
        let mut w = WireWriter::new();
        w.put_seq(&items);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        prop_assert_eq!(r.take_seq::<u64>().unwrap(), items);
    }

    #[test]
    fn decoding_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // All decoders must be total: Err on junk, never panic.
        let mut r = WireReader::new(&bytes);
        let _ = r.take_seq::<u64>();
        let _ = Endpoint::from_wire(&bytes);
        let _ = NodeId::from_wire(&bytes);
        let _ = bool::from_wire(&bytes);
        let _ = Vec::<u8>::from_wire(&bytes);
    }

    #[test]
    fn endpoint_round_trip(node in any::<u64>(), port in any::<u16>()) {
        let ep = Endpoint { node: NodeId(node), port };
        prop_assert_eq!(Endpoint::from_wire(&ep.to_wire()).unwrap(), ep);
    }

    /// Reply-to-sender always works while the association lives, for
    /// every NAT type: if a device lets a packet OUT to `dst`, a packet
    /// back IN from exactly `dst` to the allocated port passes.
    #[test]
    fn reply_to_sender_always_traverses(
        nat_idx in 0usize..4,
        dst_node in any::<u64>(),
        dst_port in any::<u16>(),
        delay_s in 0u64..7000,
    ) {
        let nat = NatType::NATTED[nat_idx];
        let mut dev = NatDevice::new(nat);
        let dst = Endpoint { node: NodeId(dst_node), port: dst_port };
        let lease = SimDuration::from_secs(7200);
        let t0 = SimTime::ZERO;
        let port = dev.outbound(dst, t0, lease);
        let later = t0 + SimDuration::from_secs(delay_s);
        prop_assert!(dev.inbound(port, dst, later), "{nat:?} blocked a reply");
    }

    /// No NAT type accepts unsolicited traffic to a never-allocated port.
    #[test]
    fn unsolicited_port_always_blocked(nat_idx in 0usize..4, src in any::<u64>(), port in 1u16..u16::MAX) {
        let nat = NatType::NATTED[nat_idx];
        let mut dev = NatDevice::new(nat);
        let source = Endpoint { node: NodeId(src), port: 1 };
        let accepted = dev.inbound(port, source, SimTime::ZERO);
        prop_assert!(!accepted);
    }

    #[test]
    fn cdf_percentiles_are_monotone_and_bounded(samples in proptest::collection::vec(-1e9f64..1e9, 1..200)) {
        let mut c = Cdf::from_samples(samples.iter().copied());
        let lo = c.min();
        let hi = c.max();
        let mut last = lo;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = c.percentile(p);
            prop_assert!(v >= last && v >= lo && v <= hi, "p{p}: {v}");
            last = v;
        }
        let mean = c.mean();
        prop_assert!(mean >= lo && mean <= hi);
    }

    #[test]
    fn cdf_fraction_below_is_monotone(samples in proptest::collection::vec(0f64..1000.0, 1..100), probes in proptest::collection::vec(0f64..1000.0, 2..10)) {
        let mut c = Cdf::from_samples(samples);
        let mut probes = probes;
        probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = 0.0;
        for p in probes {
            let f = c.fraction_below(p);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= last);
            last = f;
        }
    }
}
